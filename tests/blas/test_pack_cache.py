"""PackCache: pack-once semantics, invalidation, staleness detection."""

import numpy as np
import pytest

from repro.blas.gemm import gemm
from repro.blas.packing import pack_a, pack_b
from repro.blas.workspace import PackCache
from repro.obs import MetricsRegistry


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def test_pack_once_per_key(rng):
    cache = PackCache()
    a = rng.standard_normal((32, 16))
    p1 = cache.pack_a(a, key="panel")
    p2 = cache.pack_a(a, key="panel")
    assert p1 is p2
    assert (cache.misses, cache.hits) == (1, 1)
    assert len(cache) == 1


def test_cached_pack_matches_direct_pack(rng):
    cache = PackCache()
    a = rng.standard_normal((40, 24))
    b = rng.standard_normal((24, 40))
    assert np.array_equal(cache.pack_a(a, key="a").data, pack_a(a).data)
    assert np.array_equal(cache.pack_b(b, key="b").data, pack_b(b).data)


def test_no_key_means_no_caching(rng):
    cache = PackCache()
    a = rng.standard_normal((16, 8))
    cache.pack_a(a)
    cache.pack_a(a)
    assert len(cache) == 0
    assert cache.uncached_packs == 2
    assert (cache.hits, cache.misses) == (0, 0)


def test_sides_do_not_collide(rng):
    """The same key names different things on the A and B sides."""
    cache = PackCache()
    m = rng.standard_normal((30, 30))
    cache.pack_a(m, key="x")
    cache.pack_b(m, key="x")
    assert cache.misses == 2
    assert len(cache) == 2


def test_geometry_pins_the_key(rng):
    """A reused name with a different slice shape can never false-hit."""
    cache = PackCache()
    cache.pack_a(rng.standard_normal((16, 8)), key="panel")
    cache.pack_a(rng.standard_normal((24, 8)), key="panel")
    assert cache.misses == 2
    assert cache.hits == 0


def test_invalidate_exact_key(rng):
    cache = PackCache()
    cache.pack_a(rng.standard_normal((16, 8)), key=("lu.l21", 0))
    cache.pack_a(rng.standard_normal((16, 8)), key=("lu.l21", 1))
    assert cache.invalidate(("lu.l21", 0)) == 1
    assert len(cache) == 1
    assert cache.invalidate(("lu.l21", 0)) == 0


def test_invalidate_composed_k_slice_keys(rng):
    """The GEMM driver caches each k-slice under (user_key, k0);
    invalidating the user key must drop every slice."""
    cache = PackCache()
    a = rng.standard_normal((64, 700))  # 3 k-slices at k_block=300
    b = rng.standard_normal((700, 64))
    c = gemm(a, b, k_block=300, pack_cache=cache, a_key="mm.a", b_key="mm.b")
    assert np.allclose(c, a @ b, rtol=1e-10, atol=1e-8)
    assert cache.misses == 6  # 3 slices on each side
    assert cache.invalidate("mm.a") == 3
    assert cache.invalidate("mm.b") == 3
    assert len(cache) == 0


def test_invalidate_all(rng):
    cache = PackCache()
    cache.pack_a(rng.standard_normal((16, 8)), key="a")
    cache.pack_b(rng.standard_normal((8, 16)), key="b")
    assert cache.invalidate() == 2
    assert len(cache) == 0


def test_gemm_reuses_cached_slices(rng):
    """Two GEMMs naming the same operands pack exactly once."""
    cache = PackCache()
    a = rng.standard_normal((48, 320))
    b1 = rng.standard_normal((320, 48))
    b2 = rng.standard_normal((320, 48))
    gemm(a, b1, k_block=300, pack_cache=cache, a_key="a")
    misses_after_first = cache.misses
    c = gemm(a, b2, k_block=300, pack_cache=cache, a_key="a")
    assert np.allclose(c, a @ b2, rtol=1e-10, atol=1e-8)
    assert cache.misses == misses_after_first  # A side fully reused
    assert cache.hits == misses_after_first


@pytest.mark.parametrize("mutated_index", [(0, 0), (15, 7), (9, 3)])
def test_sample_validation_detects_mutation(rng, mutated_index):
    cache = PackCache(validate="full")
    a = rng.standard_normal((16, 8))
    cache.pack_a(a, key="panel")
    a[mutated_index] += 1.0
    fresh = cache.pack_a(a, key="panel")
    assert cache.stale_evictions == 1
    assert np.array_equal(fresh.data, pack_a(a).data)


def test_sample_mode_catches_corner_mutation(rng):
    """The default sample probe always includes element (0, 0)."""
    cache = PackCache()  # validate="sample"
    a = rng.standard_normal((50, 30))
    cache.pack_a(a, key="panel")
    a[0, 0] = 1e9
    cache.pack_a(a, key="panel")
    assert cache.stale_evictions == 1
    assert cache.hits == 0


def test_validate_none_trusts_keys(rng):
    cache = PackCache(validate="none")
    a = rng.standard_normal((16, 8))
    stale = cache.pack_a(a, key="panel")
    a[0, 0] = 1e9
    assert cache.pack_a(a, key="panel") is stale
    assert cache.stale_evictions == 0


def test_bad_validate_mode_rejected():
    with pytest.raises(ValueError, match="validate"):
        PackCache(validate="paranoid")


def test_publish_counters(rng):
    cache = PackCache()
    a = rng.standard_normal((16, 8))
    cache.pack_a(a, key="k")
    cache.pack_a(a, key="k")
    cache.pack_a(a)
    metrics = MetricsRegistry()
    cache.publish(metrics)
    flat = dict(metrics.flatten())
    assert flat["blas.pack_cache.hits"] == 1
    assert flat["blas.pack_cache.misses"] == 1
    assert flat["blas.pack_cache.uncached_packs"] == 1
    assert flat["blas.pack_cache.entries"] == 1
    assert flat["blas.pack_cache.bytes_packed"] > 0
    cache.publish(None)  # tolerated no-op
