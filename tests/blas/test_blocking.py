"""L2 block-size chooser (Section III-A1)."""

import pytest

from repro.blas.blocking import BlockChoice, choose_blocking
from repro.machine import KNC, SNB


class TestChooser:
    def test_knc_choice_is_feasible(self):
        c = choose_blocking(KNC)
        assert c.l2_bytes < KNC.l2.size_bytes
        assert c.bandwidth_gbs < KNC.stream_bw_gbs

    def test_knc_prefers_deep_k(self):
        # The paper argues for large k (amortise c update, lower
        # bandwidth); the chooser must not pick the smallest k.
        c = choose_blocking(KNC)
        assert c.k >= 240

    def test_m_is_tile_multiple(self):
        c = choose_blocking(KNC)
        assert c.m % 30 == 0
        assert c.n % 8 == 0

    def test_ab_dominates_l2(self):
        # Goto-style: the m x k block takes the largest share.
        c = choose_blocking(KNC)
        ab = 8 * c.m * c.k
        bb = 8 * c.k * c.n
        cb = 8 * c.m * c.n
        assert ab > bb and ab > cb

    def test_single_precision_allows_bigger_blocks(self):
        cd = choose_blocking(KNC, elem_bytes=8)
        cs = choose_blocking(KNC, elem_bytes=4)
        assert cs.m * cs.k >= cd.m * cd.k

    def test_l2_budget_respected(self):
        c = choose_blocking(KNC, l2_budget_fraction=0.5)
        assert c.l2_fraction <= 0.5

    def test_smaller_l2_machine_gets_smaller_blocks(self):
        c_knc = choose_blocking(KNC)
        c_snb = choose_blocking(SNB)  # 256 KB L2
        assert c_snb.l2_bytes < c_knc.l2_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_blocking(KNC, l2_budget_fraction=0.0)
        with pytest.raises(ValueError):
            choose_blocking(KNC, n=30)

    def test_infeasible_machine_raises(self):
        tiny = KNC.with_(l1=KNC.l1, l2=KNC.l2.__class__(size_bytes=64 * 1024 // 8))
        with pytest.raises(ValueError):
            choose_blocking(tiny, k_candidates=(2048,))

    def test_result_type(self):
        assert isinstance(choose_blocking(KNC), BlockChoice)
