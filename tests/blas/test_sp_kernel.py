"""Single-precision Basic Kernel 2: 16 float32 lanes per register."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.kernels import KERNEL2_ROWS, SP_LANES, basic_kernel_2_sp
from repro.blas.packing import pack_a, pack_b
from repro.machine.vector import VectorMachine


def make_tiles(k, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((KERNEL2_ROWS, k)).astype(np.float32)
    b = rng.standard_normal((k, SP_LANES)).astype(np.float32)
    return a, b, pack_a(a).tile(0), pack_b(b, tile_cols=SP_LANES).tile(0)


class TestSPKernel:
    def test_matches_numpy(self):
        a, b, at, bt = make_tiles(11)
        np.testing.assert_allclose(
            basic_kernel_2_sp(at, bt), a @ b, rtol=1e-5, atol=1e-5
        )

    def test_output_is_float32(self):
        _, _, at, bt = make_tiles(5)
        assert basic_kernel_2_sp(at, bt).dtype == np.float32

    def test_census_matches_dp_kernel(self):
        # Same 32-instruction loop, same 30/32 mix, same 4 port holes —
        # but every vmadd now does 16 lanes of work.
        _, _, at, bt = make_tiles(7)
        vm = VectorMachine(dtype=np.float32, lanes=SP_LANES)
        basic_kernel_2_sp(at, bt, vm)
        c = vm.counts
        assert c.vmadd == 30 * 7
        assert c.vmadd_mem == 26 * 7
        assert c.load == 7 and c.broadcast == 7
        assert (c.vector_total - c.store) == 32 * 7

    def test_requires_16_lane_machine(self):
        _, _, at, bt = make_tiles(3)
        with pytest.raises(ValueError):
            basic_kernel_2_sp(at, bt, VectorMachine())  # 8 DP lanes

    def test_tile_shape_validation(self):
        with pytest.raises(ValueError):
            basic_kernel_2_sp(np.zeros((4, 30), np.float32), np.zeros((4, 8), np.float32))
        with pytest.raises(ValueError):
            basic_kernel_2_sp(np.zeros((4, 29), np.float32), np.zeros((4, 16), np.float32))

    @given(st.integers(1, 30), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property(self, k, seed):
        a, b, at, bt = make_tiles(k, seed)
        np.testing.assert_allclose(
            basic_kernel_2_sp(at, bt), a @ b, rtol=2e-4, atol=2e-4
        )


class TestSPVectorMachine:
    def test_sp_machine_defaults_to_16_lanes(self):
        vm = VectorMachine(dtype=np.float32)
        assert vm.lanes == 16
        assert vm.regs.shape == (32, 16)

    def test_4ton_broadcast_tiles_four_times(self):
        vm = VectorMachine(dtype=np.float32, lanes=16)
        vm.broadcast_4to8(0, np.array([1, 2, 3, 4], np.float32))
        np.testing.assert_array_equal(vm.regs[0], np.tile([1, 2, 3, 4], 4))

    def test_swizzle_generalises_to_16_lanes(self):
        v = np.arange(16.0, dtype=np.float32)
        out = VectorMachine._swizzle(v, 2)
        np.testing.assert_array_equal(out, np.repeat([2, 6, 10, 14], 4))

    def test_bad_lanes(self):
        with pytest.raises(ValueError):
            VectorMachine(lanes=6)
        with pytest.raises(ValueError):
            VectorMachine(lanes=0)
