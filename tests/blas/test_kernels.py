"""Basic Kernel 1/2: numerics vs NumPy and instruction census vs the
paper's efficiency arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.kernels import (
    KERNEL1_ROWS,
    KERNEL2_ROWS,
    basic_kernel_1,
    basic_kernel_2,
    tile_multiply_fast,
)
from repro.blas.packing import pack_a, pack_b
from repro.machine.vector import VectorMachine


def tiles(rows, k, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((rows, k))
    b = rng.standard_normal((k, 8))
    a_tile = pack_a(a, tile_rows=rows).tile(0)
    b_tile = pack_b(b).tile(0)
    return a, b, a_tile, b_tile


class TestKernelNumerics:
    def test_kernel1_matches_numpy(self):
        a, b, at, bt = tiles(KERNEL1_ROWS, 12)
        np.testing.assert_allclose(basic_kernel_1(at, bt), a @ b, rtol=1e-13)

    def test_kernel2_matches_numpy(self):
        a, b, at, bt = tiles(KERNEL2_ROWS, 12)
        np.testing.assert_allclose(basic_kernel_2(at, bt), a @ b, rtol=1e-13)

    def test_fast_path_matches_numpy(self):
        a, b, at, bt = tiles(KERNEL2_ROWS, 17)
        np.testing.assert_allclose(tile_multiply_fast(at, bt), a @ b, rtol=1e-13)

    def test_kernels_agree_on_shared_rows(self):
        # Kernel 1 on a 31-row tile and Kernel 2 on its first 30 rows
        # must produce identical values for those rows.
        a, b, at31, bt = tiles(KERNEL1_ROWS, 9, seed=3)
        at30 = pack_a(a[:30], tile_rows=30).tile(0)
        c1 = basic_kernel_1(at31, bt)
        c2 = basic_kernel_2(at30, bt)
        np.testing.assert_allclose(c1[:30], c2, rtol=1e-13)

    @given(st.integers(1, 40), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_kernel2_property(self, k, seed):
        a, b, at, bt = tiles(KERNEL2_ROWS, k, seed)
        np.testing.assert_allclose(basic_kernel_2(at, bt), a @ b, rtol=1e-11, atol=1e-12)


class TestInstructionCensus:
    def test_kernel1_census_matches_paper(self):
        # Per iteration: 32 vector instructions, 31 vmadds, all touching
        # memory -> the 96.9% / stall analysis of Section III-A2.
        _, _, at, bt = tiles(KERNEL1_ROWS, 10)
        vm = VectorMachine()
        basic_kernel_1(at, bt, vm)
        k = 10
        c = vm.counts
        assert c.vmadd == 31 * k
        assert c.vmadd_mem == 31 * k
        assert c.load == k
        assert c.broadcast == 0
        assert c.vector_total - c.store == 32 * k  # stores are the c update
        assert c.memory_accessing - c.store == 32 * k  # no holes

    def test_kernel2_census_matches_paper(self):
        # Per iteration: 32 vector instructions, 30 vmadds, 28 touching
        # memory -> four port holes per iteration.
        _, _, at, bt = tiles(KERNEL2_ROWS, 10)
        vm = VectorMachine()
        basic_kernel_2(at, bt, vm)
        k = 10
        c = vm.counts
        assert c.vmadd == 30 * k
        assert c.vmadd_mem == 26 * k
        assert c.swizzle_use == 4 * k
        assert c.load == k
        assert c.broadcast == k
        assert c.vector_total - c.store == 32 * k
        assert (c.vector_total - c.store) - (c.memory_accessing - c.store) == 4 * k

    def test_kernel1_uses_all_32_registers(self):
        _, _, at, bt = tiles(KERNEL1_ROWS, 2)
        small = VectorMachine(n_registers=31)
        with pytest.raises(ValueError):
            basic_kernel_1(at, bt, small)

    def test_prefetches_co_issue(self):
        _, _, at, bt = tiles(KERNEL2_ROWS, 5)
        vm = VectorMachine()
        basic_kernel_2(at, bt, vm)
        assert vm.counts.prefetch == 2 * 5  # two fills per iteration
        # Prefetches never count against vector slots.
        assert vm.counts.vector_total == 32 * 5 + 30  # + final c stores


class TestValidation:
    def test_k_mismatch_raises(self):
        _, _, at, _ = tiles(KERNEL2_ROWS, 5)
        _, _, _, bt = tiles(KERNEL2_ROWS, 6)
        with pytest.raises(ValueError):
            basic_kernel_2(at, bt)

    def test_wrong_row_count_raises(self):
        _, _, at, bt = tiles(29, 5)
        with pytest.raises(ValueError):
            basic_kernel_2(at, bt)

    def test_wrong_b_width_raises(self):
        a = np.zeros((5, KERNEL2_ROWS))
        b = np.zeros((5, 7))
        with pytest.raises(ValueError):
            basic_kernel_2(a, b)

    def test_fast_path_k_mismatch(self):
        with pytest.raises(ValueError):
            tile_multiply_fast(np.zeros((4, 30)), np.zeros((5, 8)))
