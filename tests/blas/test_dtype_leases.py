"""Cross-precision lease safety: an SP request is never served DP bytes.

The MxP path runs float32 factorizations and float64 refinement over
the *same* pooled substrate, so the arenas must keep concurrent leases
of different precisions strictly apart: every view handed out has
exactly the requested dtype, live leases never overlap in memory, and
the lease tables record the precision for diagnostics. The property
tests drive :class:`~repro.blas.buffers.BufferPool` and
:class:`~repro.parallel.shm.SharedArena` with random interleaved
SP/DP checkout/release traces; :class:`~repro.blas.workspace.PackCache`
is covered by its dtype-pinned key. The upcast guards on
``matmul_into`` / ``subtract_into`` are tested alongside because they
close the same hole from the kernel side (no silent promotion).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.buffers import BufferPool, matmul_into, subtract_into
from repro.blas.workspace import PackCache
from repro.parallel.shm import SharedArena

try:  # NumPy >= 2.0 moved byte_bounds out of the top-level namespace.
    from numpy.lib.array_utils import byte_bounds
except ImportError:  # pragma: no cover - NumPy 1.x
    byte_bounds = np.byte_bounds


#: A trace step: (dtype, rows, cols, release-index-or-None). The release
#: index frees one of the currently-live leases (modulo count).
_steps = st.lists(
    st.tuples(
        st.sampled_from([np.float32, np.float64]),
        st.integers(1, 24),
        st.integers(1, 24),
        st.one_of(st.none(), st.integers(0, 31)),
    ),
    min_size=1,
    max_size=32,
)


def _drive(make_pool, steps, destroy=None):
    """Replay a checkout/release trace, checking the lease invariants
    after every step, and return the pool for counter assertions."""
    pool = make_pool()
    live = []  # (view, requested dtype)
    try:
        for dt, rows, cols, rel in steps:
            if rel is not None and live:
                view, _want = live.pop(rel % len(live))
                pool.release(view)
            view = pool.checkout((rows, cols), dt, key=np.dtype(dt).name)
            live.append((view, np.dtype(dt)))
            # 1. Served at exactly the requested precision.
            for v, want in live:
                assert v.dtype == want
            # 2. Live leases are pairwise disjoint in memory — an SP
            #    lease can never alias a DP lease's bytes (or any
            #    other lease's).
            bounds = sorted(byte_bounds(v) for v, _ in live)
            for (lo_a, hi_a), (lo_b, _hi_b) in zip(bounds, bounds[1:]):
                assert hi_a <= lo_b, "live leases overlap"
            # 3. The lease table records the precision.
            recorded = [d for (_k, d, _n) in pool.active_leases()]
            assert sorted(recorded) == sorted(d.name for _, d in live)
        # by_dtype accounts every checkout, by precision.
        assert sum(pool.by_dtype.values()) == pool.checkouts
        for v, _ in live:
            pool.release(v)
        assert pool.active == 0
    finally:
        if destroy is not None:
            destroy(pool)
    return pool


class TestBufferPoolDtypeLeases:
    @settings(max_examples=50, deadline=None)
    @given(_steps)
    def test_interleaved_precisions_never_alias(self, steps):
        _drive(BufferPool, steps)

    def test_by_dtype_counters(self):
        pool = BufferPool()
        with pool.rent((4, 4), np.float32):
            with pool.rent((4, 4), np.float64):
                assert [d for (_k, d, _n) in pool.active_leases()] == [
                    "float32", "float64"]
        assert pool.by_dtype == {"float32": 1, "float64": 1}


class TestSharedArenaDtypeLeases:
    @settings(max_examples=15, deadline=None)
    @given(_steps)
    def test_interleaved_precisions_never_alias(self, steps):
        _drive(
            lambda: SharedArena(segment_bytes=1 << 16),
            steps,
            destroy=lambda arena: arena.destroy(),
        )

    def test_refs_round_trip_at_both_precisions(self):
        arena = SharedArena(segment_bytes=1 << 16)
        try:
            sp = arena.checkout((3, 5), np.float32, key="sp")
            dp = arena.checkout((3, 5), np.float64, key="dp")
            sp[:] = 1.5
            dp[:] = 2.5
            assert arena.resolve(arena.ref_of(sp)).dtype == np.float32
            assert arena.resolve(arena.ref_of(dp)).dtype == np.float64
            assert float(arena.resolve(arena.ref_of(sp))[0, 0]) == 1.5
            arena.release(sp)
            arena.release(dp)
        finally:
            arena.destroy()


class TestPackCacheDtypeKey:
    def test_same_key_different_dtype_never_false_hits(self):
        """The full cache key pins ``src.dtype``, so one name used for
        an SP and a DP slice of identical values produces two entries —
        a hit at the wrong precision would hand an SP GEMM a packed DP
        panel."""
        cache = PackCache()
        dp = np.arange(12.0, dtype=np.float64).reshape(3, 4)
        sp = dp.astype(np.float32)
        p_dp = cache.pack_a(dp, key="panel")
        p_sp = cache.pack_a(sp, key="panel")
        assert cache.misses == 2 and cache.hits == 0
        assert p_dp.data.dtype == np.float64
        assert p_sp.data.dtype == np.float32
        # Repeats at each precision hit their own entries.
        assert cache.pack_a(dp, key="panel") is p_dp
        assert cache.pack_a(sp, key="panel") is p_sp
        assert cache.hits == 2


class TestUpcastGuards:
    def test_matmul_into_rejects_mixed_dtypes(self):
        pool = BufferPool()
        sp = np.ones((4, 4), dtype=np.float32)
        dp = np.ones((4, 4), dtype=np.float64)
        out = np.empty((4, 4), dtype=np.float64)
        with pytest.raises(TypeError, match="no silent promotion"):
            matmul_into(pool, sp, dp, out)
        with pytest.raises(TypeError, match="no silent promotion"):
            matmul_into(pool, dp, dp, np.empty((4, 4), dtype=np.float32))
        # Vector-like shapes go through the same guard.
        with pytest.raises(TypeError, match="no silent promotion"):
            matmul_into(pool, sp, np.ones((4, 1)), np.empty((4, 1)))
        assert pool.active == 0

    def test_matmul_into_accepts_uniform_float32(self):
        pool = BufferPool()
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 5)).astype(np.float32)
        y = rng.standard_normal((5, 4)).astype(np.float32)
        out = np.empty((6, 4), dtype=np.float32)
        matmul_into(pool, x[:, ::-1][:, ::-1], y, out)  # non-contig x
        assert np.array_equal(out, x @ y)
        assert pool.active == 0

    def test_subtract_into_rejects_mixed_dtypes(self):
        t = np.ones((3, 3), dtype=np.float64)
        with pytest.raises(TypeError, match="no silent promotion"):
            subtract_into(t, np.ones((3, 3), dtype=np.float32))

    def test_subtract_into_float32(self):
        t = np.arange(9, dtype=np.float32).reshape(3, 3)
        want = t - 1
        subtract_into(t, np.ones((3, 3), dtype=np.float32))
        assert np.array_equal(t, want)
