"""LU building blocks vs SciPy/NumPy references."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas.getrf import SingularMatrixError, getf2, getrf, reconstruct_lu
from repro.blas.laswp import (
    apply_pivots_to_vector,
    laswp,
    pivots_to_permutation,
)
from repro.blas.trsm import (
    trsm_lower_unit_left,
    trsm_lower_unit_right,
    trsm_upper_left,
)


def rand(m, n, seed):
    return np.random.default_rng(seed).standard_normal((m, n))


def check_plu(original, factored, ipiv):
    """P @ original == L @ U for the in-place factorization."""
    lower, upper = reconstruct_lu(factored)
    perm = pivots_to_permutation(ipiv, original.shape[0])
    np.testing.assert_allclose(original[perm], lower @ upper, rtol=1e-10, atol=1e-10)


class TestGetf2:
    def test_square(self):
        a0 = rand(12, 12, 0)
        a = a0.copy()
        ipiv = getf2(a)
        check_plu(a0, a, ipiv)

    def test_tall_panel(self):
        a0 = rand(50, 8, 1)
        a = a0.copy()
        ipiv = getf2(a)
        assert len(ipiv) == 8
        check_plu(a0, a, ipiv)

    def test_pivoting_selects_max_abs(self):
        a = np.array([[1.0, 2.0], [10.0, 1.0]])
        ipiv = getf2(a)
        assert ipiv[0] == 1  # row 1 had the bigger leading element

    def test_unit_lower_magnitudes_bounded(self):
        # Partial pivoting guarantees |L| <= 1 below the diagonal.
        a = rand(40, 40, 2)
        getf2(a)
        assert np.all(np.abs(np.tril(a, -1)) <= 1.0 + 1e-12)

    def test_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            getf2(np.zeros((4, 4)))

    def test_rejects_int_matrix(self):
        with pytest.raises(ValueError):
            getf2(np.eye(3, dtype=int))


class TestGetrf:
    def test_matches_getf2(self):
        a0 = rand(60, 24, 3)
        a_blocked, a_unblocked = a0.copy(), a0.copy()
        ipiv_b = getrf(a_blocked, min_block=8)
        ipiv_u = getf2(a_unblocked)
        np.testing.assert_array_equal(ipiv_b, ipiv_u)
        np.testing.assert_allclose(a_blocked, a_unblocked, rtol=1e-10, atol=1e-12)

    def test_square_vs_scipy(self):
        a0 = rand(48, 48, 4)
        a = a0.copy()
        ipiv = getrf(a, min_block=12)
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(a, lu_ref, rtol=1e-9, atol=1e-10)
        np.testing.assert_array_equal(ipiv, piv_ref)

    @given(st.integers(2, 64), st.integers(1, 24), st.integers(2, 32))
    @settings(max_examples=25, deadline=None)
    def test_property_plu(self, m, n, min_block):
        n = min(n, m)
        a0 = rand(m, n, m * 31 + n)
        a = a0.copy()
        ipiv = getrf(a, min_block=min_block)
        check_plu(a0, a, ipiv)


class TestLaswp:
    def test_forward_matches_permutation(self):
        a0 = rand(10, 6, 5)
        ipiv = np.array([3, 1, 5, 3])
        a = laswp(a0.copy(), ipiv)
        perm = pivots_to_permutation(ipiv, 10)
        np.testing.assert_array_equal(a, a0[perm])

    def test_backward_inverts_forward(self):
        a0 = rand(12, 4, 6)
        ipiv = np.array([7, 2, 2, 9, 4])
        a = laswp(laswp(a0.copy(), ipiv, forward=True), ipiv, forward=False)
        np.testing.assert_array_equal(a, a0)

    def test_offset(self):
        a0 = rand(10, 3, 7)
        ipiv = np.array([2, 1])  # local to rows 4..
        a = laswp(a0.copy(), ipiv, offset=4)
        expected = a0.copy()
        expected[[4, 6]] = expected[[6, 4]]
        np.testing.assert_array_equal(a, expected)

    def test_out_of_range_swap_raises(self):
        with pytest.raises(IndexError):
            laswp(rand(4, 2, 8), np.array([10]))

    def test_vector_variant_consistent(self):
        x0 = np.arange(10.0)
        ipiv = np.array([4, 3, 2])
        x = apply_pivots_to_vector(x0.copy(), ipiv)
        as_matrix = laswp(x0.reshape(-1, 1).copy(), ipiv)
        np.testing.assert_array_equal(x, as_matrix.ravel())

    def test_vector_backward_inverts(self):
        x0 = np.arange(8.0)
        ipiv = np.array([5, 5, 3])
        x = apply_pivots_to_vector(
            apply_pivots_to_vector(x0.copy(), ipiv), ipiv, forward=False
        )
        np.testing.assert_array_equal(x, x0)


class TestTrsm:
    def test_lower_unit_left(self):
        n = 40
        l = np.tril(rand(n, n, 9), -1) + np.eye(n)
        b0 = rand(n, 12, 10)
        out = trsm_lower_unit_left(l, b0.copy(), block=8)
        np.testing.assert_allclose(out, sla.solve_triangular(l, b0, lower=True, unit_diagonal=True), rtol=1e-10)

    def test_upper_left(self):
        n = 40
        u = np.triu(rand(n, n, 11)) + 5 * np.eye(n)
        b0 = rand(n, 9, 12)
        out = trsm_upper_left(u, b0.copy(), block=16)
        np.testing.assert_allclose(out, sla.solve_triangular(u, b0, lower=False), rtol=1e-10)

    def test_lower_unit_right(self):
        n = 24
        l = np.tril(rand(n, n, 13), -1) + np.eye(n)
        b0 = rand(7, n, 14)
        out = trsm_lower_unit_right(l, b0.copy(), block=10)
        # X L^T = B  =>  X = B @ inv(L).T
        np.testing.assert_allclose(out, b0 @ np.linalg.inv(l).T, rtol=1e-9)

    def test_singular_upper_raises(self):
        u = np.triu(rand(5, 5, 15))
        u[2, 2] = 0.0
        with pytest.raises(np.linalg.LinAlgError):
            trsm_upper_left(u, rand(5, 2, 16))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            trsm_lower_unit_left(np.eye(4), np.zeros((5, 2)))
        with pytest.raises(ValueError):
            trsm_upper_left(np.zeros((3, 4)), np.zeros((4, 2)))

    @given(st.integers(1, 48), st.integers(1, 12), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_lower_unit_left_property(self, n, nrhs, block):
        l = np.tril(rand(n, n, n * 3 + nrhs), -1) + np.eye(n)
        b0 = rand(n, nrhs, nrhs * 5 + n)
        out = trsm_lower_unit_left(l, b0.copy(), block=block)
        np.testing.assert_allclose(l @ out, b0, rtol=1e-8, atol=1e-8)
