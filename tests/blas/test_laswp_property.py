"""Property tests: the vectorized pivot-permutation and TRSM paths
against their step-by-step reference loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.blas.trsm as trsm_mod
from repro.blas.laswp import (
    _pivots_to_permutation_loop,
    apply_pivots_to_vector,
    laswp,
    pivots_to_permutation,
)
from repro.blas.trsm import (
    trsm_lower_unit_left,
    trsm_lower_unit_right,
    trsm_upper_left,
)


def _reference_swaps(x: np.ndarray, ipiv: np.ndarray, offset: int) -> np.ndarray:
    """Definitionally apply the swaps one at a time (forward order)."""
    out = x.copy()
    for j, p in enumerate(ipiv):
        if p != j:
            r0, r1 = offset + j, offset + int(p)
            out[[r0, r1]] = out[[r1, r0]]
    return out


@st.composite
def partial_pivot_cases(draw):
    """LAPACK partial-pivoting convention: ipiv[j] >= j."""
    n = draw(st.integers(1, 24))
    offset = draw(st.integers(0, n - 1))
    space = n - offset
    m = draw(st.integers(0, space))
    ipiv = [draw(st.integers(j, space - 1)) for j in range(m)]
    return n, offset, np.asarray(ipiv, dtype=np.int64)


@st.composite
def arbitrary_pivot_cases(draw):
    """Arbitrary swap sequences (may revisit rows below the diagonal)."""
    n = draw(st.integers(1, 24))
    offset = draw(st.integers(0, n - 1))
    space = n - offset
    m = draw(st.integers(0, space))
    ipiv = draw(
        st.lists(st.integers(0, space - 1), min_size=m, max_size=m)
    )
    return n, offset, np.asarray(ipiv, dtype=np.int64)


@settings(max_examples=200, deadline=None)
@given(partial_pivot_cases())
def test_vectorized_permutation_matches_loop(case):
    n, offset, ipiv = case
    assert np.array_equal(
        pivots_to_permutation(ipiv, n, offset),
        _pivots_to_permutation_loop(ipiv, n, offset),
    )


@settings(max_examples=200, deadline=None)
@given(arbitrary_pivot_cases())
def test_arbitrary_sequences_match_loop(case):
    """Non-partial-pivoting sequences take the fallback — and still
    agree with the reference by construction."""
    n, offset, ipiv = case
    assert np.array_equal(
        pivots_to_permutation(ipiv, n, offset),
        _pivots_to_permutation_loop(ipiv, n, offset),
    )


@settings(max_examples=100, deadline=None)
@given(partial_pivot_cases())
def test_permutation_is_the_swap_sequence(case):
    """a[perm] must equal applying the swaps one at a time."""
    n, offset, ipiv = case
    x = np.arange(n, dtype=np.float64).reshape(n, 1) * 3.0 + 1.0
    perm = pivots_to_permutation(ipiv, n, offset)
    assert np.array_equal(x[perm], _reference_swaps(x, ipiv, offset))


@settings(max_examples=100, deadline=None)
@given(partial_pivot_cases(), st.integers(1, 4))
def test_laswp_roundtrip(case, width):
    n, offset, ipiv = case
    rng = np.random.default_rng(5)
    a = rng.standard_normal((n, width))
    b = a.copy()
    laswp(b, ipiv, offset=offset, forward=True)
    assert np.array_equal(b, _reference_swaps(a, ipiv, offset))
    laswp(b, ipiv, offset=offset, forward=False)
    assert np.array_equal(b, a)


@settings(max_examples=100, deadline=None)
@given(partial_pivot_cases())
def test_vector_and_matrix_paths_agree(case):
    n, offset, ipiv = case
    rng = np.random.default_rng(6)
    x = rng.standard_normal(n)
    as_matrix = laswp(x.copy().reshape(n, 1), ipiv, offset=offset)
    as_vector = apply_pivots_to_vector(x.copy(), ipiv, offset=offset)
    assert np.array_equal(as_matrix[:, 0], as_vector)


def test_out_of_range_swap_raises():
    a = np.zeros((4, 2))
    with pytest.raises(IndexError):
        laswp(a, np.array([5]), offset=0)
    with pytest.raises(IndexError):
        laswp(a, np.array([2]), offset=2)  # offset pushes partner to row 4
    # A trivial self-swap never reads the out-of-range row.
    laswp(a, np.array([0]), offset=3)


# --- TRSM: LAPACK chunks vs the pure-NumPy column loops ---------------------


@pytest.fixture
def force_loops():
    trsm_mod._FORCE_LOOPS = True
    try:
        yield
    finally:
        trsm_mod._FORCE_LOOPS = False


@pytest.mark.parametrize("n,width,block", [(5, 3, 64), (64, 17, 16), (97, 8, 32)])
def test_trsm_loop_fallback_matches_native(force_loops, n, width, block):
    rng = np.random.default_rng(9)
    # Scale the off-diagonals down: unit triangulars with O(1) entries
    # have exponentially growing inverses, which would swamp the
    # reconstruction check with conditioning noise.
    scale = 1.0 / np.sqrt(n)
    l = np.tril(rng.standard_normal((n, n)), -1) * scale + np.eye(n)
    u = np.triu(rng.standard_normal((n, n)), 1) * scale + np.diag(
        np.full(n, 4.0)
    )
    b0 = rng.standard_normal((n, width))

    looped = trsm_lower_unit_left(l, b0.copy(), block=block)
    trsm_mod._FORCE_LOOPS = False
    native = trsm_lower_unit_left(l, b0.copy(), block=block)
    trsm_mod._FORCE_LOOPS = True
    assert np.allclose(looped, native, rtol=1e-10, atol=1e-12)
    assert np.allclose(l @ native, b0, rtol=1e-9, atol=1e-9)

    looped = trsm_upper_left(u, b0.copy(), block=block)
    trsm_mod._FORCE_LOOPS = False
    native = trsm_upper_left(u, b0.copy(), block=block)
    trsm_mod._FORCE_LOOPS = True
    assert np.allclose(looped, native, rtol=1e-10, atol=1e-12)
    assert np.allclose(u @ native, b0, rtol=1e-9, atol=1e-9)

    c0 = rng.standard_normal((width, n))
    looped = trsm_lower_unit_right(l, c0.copy(), block=block)
    trsm_mod._FORCE_LOOPS = False
    native = trsm_lower_unit_right(l, c0.copy(), block=block)
    trsm_mod._FORCE_LOOPS = True
    assert np.allclose(looped, native, rtol=1e-10, atol=1e-12)
    assert np.allclose(native @ l.T, c0, rtol=1e-9, atol=1e-9)
