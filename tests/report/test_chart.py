"""ASCII chart rendering."""

import pytest

from repro.report import render_chart


@pytest.fixture
def series():
    return {
        "a": [(0.0, 0.0), (10.0, 100.0)],
        "b": [(0.0, 50.0), (10.0, 50.0)],
    }


class TestRenderChart:
    def test_contains_legend_and_glyphs(self, series):
        out = render_chart(series)
        assert "o=a" in out and "x=b" in out

    def test_extremes_on_axis_labels(self, series):
        out = render_chart(series)
        assert "100" in out
        assert out.splitlines()[-3].startswith(" " * 11 + "+")

    def test_top_and_bottom_points_placed(self, series):
        out = render_chart(series, width=40, height=10)
        lines = out.splitlines()
        assert "o" in lines[0]  # y-max row holds a's top point
        assert "o" in lines[9]  # y-min row holds a's bottom point

    def test_axis_labels(self, series):
        out = render_chart(series, x_label="N", y_label="GFLOPS")
        assert out.startswith("GFLOPS")
        assert " N " in out or "N" in out.splitlines()[-2]

    def test_single_point_series(self):
        out = render_chart({"p": [(5.0, 5.0)]})
        assert "o=p" in out

    def test_empty_series(self):
        assert render_chart({"a": []}) == "(no data)"
        assert render_chart({}) == "(no data)"

    def test_too_small_raises(self, series):
        with pytest.raises(ValueError):
            render_chart(series, width=4)
        with pytest.raises(ValueError):
            render_chart(series, height=2)

    def test_constant_series_does_not_divide_by_zero(self):
        out = render_chart({"flat": [(1.0, 3.0), (2.0, 3.0)]})
        assert "o=flat" in out
