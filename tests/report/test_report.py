"""Table and Gantt rendering."""

import pytest

from repro.report import Table, render_gantt, render_stacked_profile
from repro.sim import TraceRecorder


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.record("g0", "dgemm", 0.0, 6.0)
    t.record("g0", "dgetrf", 6.0, 8.0)
    t.record("g1", "dlaswp", 0.0, 1.0)
    t.record("g1", "dgemm", 1.0, 7.0)
    return t


class TestTable:
    def test_render_contains_everything(self):
        t = Table("Table II", ["k", "eff", "GFLOPS"])
        t.add(300, 0.894, 944.0)
        t.add(400, 0.889, 938.0)
        out = t.render()
        assert "Table II" in out
        assert "k" in out and "eff" in out
        assert "944" in out and "0.894" in out

    def test_wrong_cell_count_raises(self):
        t = Table("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_str_is_render(self):
        t = Table("t", ["a"])
        t.add(1)
        assert str(t) == t.render()


class TestGantt:
    def test_lanes_and_legend(self, trace):
        out = render_gantt(trace, width=40)
        assert "g0" in out and "g1" in out
        assert "#=dgemm" in out
        assert "P=dgetrf" in out

    def test_glyphs_cover_duration(self, trace):
        out = render_gantt(trace, width=40)
        g0_line = next(l for l in out.splitlines() if l.startswith("g0"))
        # dgemm occupies ~3/4 of the g0 lane.
        assert g0_line.count("#") >= 25

    def test_empty_trace(self):
        assert render_gantt(TraceRecorder()) == "(empty trace)"

    def test_worker_filter(self, trace):
        out = render_gantt(trace, width=20, workers=["g1"])
        assert "g0" not in out

    def test_invalid_width(self, trace):
        with pytest.raises(ValueError):
            render_gantt(trace, width=0)


class TestStackedProfile:
    def test_percentages_sane(self, trace):
        out = render_stacked_profile(trace, n_windows=4)
        lines = [l for l in out.splitlines() if l.startswith("[")]
        assert len(lines) == 4

    def test_idle_column_present(self, trace):
        out = render_stacked_profile(trace, n_windows=2)
        assert "idle%" in out

    def test_single_worker_filter(self, trace):
        out = render_stacked_profile(trace, n_windows=2, worker="g0")
        assert "dgemm" in out

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            render_stacked_profile(trace, n_windows=0)

    def test_empty(self):
        assert render_stacked_profile(TraceRecorder()) == "(empty trace)"
