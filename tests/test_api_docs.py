"""The API-reference generator: coverage and documentation hygiene."""

import importlib
import inspect
import pathlib
import pkgutil
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "tools"))
import gen_api_docs  # noqa: E402

import repro  # noqa: E402


class TestGenerator:
    def test_renders_every_package(self):
        text = gen_api_docs.render()
        for pkg in ("machine", "sim", "blas", "lu", "hpl", "hybrid", "cluster", "report"):
            assert f"## `repro.{pkg}`" in text

    def test_headline_symbols_documented(self):
        text = gen_api_docs.render()
        for symbol in ("NativeHPL", "HybridHPL", "DistributedHPL", "OffloadDGEMM"):
            assert symbol in text

    def test_output_file_matches_generator(self):
        out = pathlib.Path(gen_api_docs.OUT)
        if not out.exists():
            pytest.skip("docs/API.md not generated yet")
        assert out.read_text() == gen_api_docs.render()


class TestDocstringHygiene:
    def _public_modules(self):
        yield repro
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if any(p.startswith("_") for p in info.name.split(".")):
                continue
            yield importlib.import_module(info.name)

    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in self._public_modules() if not m.__doc__]
        assert not missing, f"undocumented modules: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in self._public_modules():
            for name, obj in gen_api_docs.public_members(module):
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"
