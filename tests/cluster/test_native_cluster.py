"""The future-work native cluster model (Section VII)."""

import pytest

from repro.cluster.native_cluster import NativeClusterHPL
from repro.hpl import NativeHPL
from repro.hybrid import HybridHPL
from repro.machine.energy import gflops_per_watt, hybrid_node_power


class TestConsistency:
    def test_single_card_matches_native_des(self):
        # The per-stage model is calibrated to the full DES at 30K and
        # must stay within a few percent of it elsewhere.
        cluster = NativeClusterHPL(30000).run()
        des = NativeHPL(30000).run()
        assert cluster.tflops * 1e3 == pytest.approx(des.gflops, rel=0.03)

    def test_memory_gate(self):
        with pytest.raises(ValueError):
            NativeClusterHPL(40000)  # > 8 GiB of GDDR
        NativeClusterHPL(60000, p=2, q=2)  # fits across 4 cards

    def test_max_n(self):
        assert NativeClusterHPL.max_n(1, 1) == pytest.approx(32768, abs=1)
        assert NativeClusterHPL.max_n(10, 10) == pytest.approx(327680, abs=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            NativeClusterHPL(0)
        with pytest.raises(ValueError):
            NativeClusterHPL(1000, p=0)


class TestScaling:
    def test_cluster_efficiency_stays_high(self):
        r = NativeClusterHPL(300000, p=10, q=10).run()
        assert 0.70 < r.efficiency < 0.85

    def test_multi_node_efficiency_below_single(self):
        single = NativeClusterHPL(30000).run()
        multi = NativeClusterHPL(120000, p=4, q=4).run()
        assert multi.efficiency < single.efficiency

    def test_bigger_n_helps_at_fixed_grid(self):
        small = NativeClusterHPL(120000, p=10, q=10).run()
        big = NativeClusterHPL(300000, p=10, q=10).run()
        assert big.efficiency > small.efficiency


class TestEnergyClaim:
    def test_native_beats_hybrid_gflops_per_watt(self):
        # Section VII: hybrid is "less energy efficient compared to the
        # fully-native multi-node implementation".
        native = NativeClusterHPL(300000, p=10, q=10).run()
        hybrid = HybridHPL(825000, p=10, q=10).run()
        hybrid_gpw = gflops_per_watt(
            hybrid.tflops * 1e3, 100 * hybrid_node_power(1).total_w
        )
        assert native.gflops_per_watt > hybrid_gpw

    def test_hybrid_still_wins_raw_tflops(self):
        # The hybrid's bigger host memory lets it run a larger N and it
        # keeps the host flops: more TFLOPS, less efficiency per watt.
        native = NativeClusterHPL(300000, p=10, q=10).run()
        hybrid = HybridHPL(825000, p=10, q=10).run()
        assert hybrid.tflops > native.tflops
