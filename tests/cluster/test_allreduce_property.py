"""Property test: recursive-doubling allreduce is bitwise-equal to the
gather+bcast fallback — for any world size (including non-powers of two)
and under an injected slow-rank fault plan."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.comm import World
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)


def _allreduce_both(size, values, injector=None, retry=None):
    def body(comm):
        v = np.float64(values[comm.rank])
        rd = comm.allreduce(v, algo="rd")
        gather = comm.allreduce(v, algo="gather")
        auto = comm.allreduce(v)
        return (np.float64(rd), np.float64(gather), np.float64(auto))

    world = World(size, injector=injector, retry=retry)
    return world.run(body)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_rd_matches_gather_bitwise_any_size(data):
    size = data.draw(st.integers(min_value=1, max_value=7), label="size")
    values = data.draw(
        st.lists(finite, min_size=size, max_size=size), label="values")
    for rd, gather, auto in _allreduce_both(size, values):
        # Bit-for-bit, not approx: both algorithms reduce in the same order.
        assert rd.tobytes() == gather.tobytes()
        assert auto.tobytes() == rd.tobytes()


@settings(max_examples=10, deadline=None)
@given(st.data())
def test_rd_matches_gather_under_slow_rank(data):
    size = data.draw(st.integers(min_value=2, max_value=6), label="size")
    slow = data.draw(st.integers(min_value=0, max_value=size - 1),
                     label="slow_rank")
    values = data.draw(
        st.lists(finite, min_size=size, max_size=size), label="values")
    plan = FaultPlan.parse(
        f"seed=3;slow:rank={slow},delay=0.0005,jitter=0.0005")
    results = _allreduce_both(
        size, values, injector=FaultInjector(plan),
        retry=RetryPolicy(comm_timeout_s=5.0, max_retries=2))
    baseline = _allreduce_both(size, values)
    for got, want in zip(results, baseline):
        assert got[0].tobytes() == want[0].tobytes()
        assert got[1].tobytes() == want[1].tobytes()


def test_rd_matches_gather_with_array_payloads_and_custom_op():
    def body(comm):
        v = np.arange(5, dtype=np.float64) * (comm.rank + 1) * 0.1
        rd = comm.allreduce(v, op=np.maximum, algo="rd")
        gather = comm.allreduce(v, op=np.maximum, algo="gather")
        return (rd.copy(), gather.copy())

    for size in (3, 5, 6):
        for rd, gather in World(size).run(body):
            assert np.array_equal(rd, gather)
            assert rd.tobytes() == gather.tobytes()
