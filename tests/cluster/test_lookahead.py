"""Look-ahead schedule and broadcast-shape equivalence.

The acceptance bar for the overlap work: every broadcast algorithm
delivers bitwise-identical payloads, and the look-ahead pipeline
reproduces the synchronous ``DistributedHPL`` factorization bit for
bit — it is a pure reordering of independent work.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.bcast_algos import (
    binomial_bcast,
    ring_bcast,
    segmented_ring_bcast,
    segmented_ring_bcast_nb,
)
from repro.cluster.comm import World
from repro.cluster.hpl_mpi import DistributedHPL


def _star_bcast(comm, payload, root, group):
    return comm.bcast(payload, root=root, ranks=group)


ALL_SHAPES = [
    _star_bcast,
    ring_bcast,
    binomial_bcast,
    segmented_ring_bcast,
    segmented_ring_bcast_nb,
]


class TestBroadcastShapeEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        size=st.integers(2, 6),
        root=st.integers(0, 5),
        rows=st.integers(1, 40),
        cols=st.integers(1, 7),
        seed=st.integers(0, 2**16),
    )
    def test_all_shapes_bitwise_identical(self, size, root, rows, cols, seed):
        """Property: star / ring / binomial / segmented-ring / ring-mod
        deliver bitwise-identical arrays for any group, root and shape."""
        root = root % size
        rng = np.random.default_rng(seed)
        payload = rng.standard_normal((rows, cols))
        group = list(range(size))
        per_algo = []
        for algo in ALL_SHAPES:

            def body(comm, algo=algo):
                data = payload if comm.rank == root else None
                return algo(comm, data, root, group)

            per_algo.append(World(size).run(body))
        for results in per_algo[1:]:
            for got, want in zip(results, per_algo[0]):
                assert np.array_equal(got, want)
                assert got.dtype == want.dtype and got.shape == want.shape

    def test_ring_mod_tuple_payload_tandem_split(self):
        """The panel payload shape: (global_rows, L_block) split in
        tandem along the leading dimension, ipiv riding with segment 0."""
        g_rows = np.arange(10, 23)
        block = np.linspace(0.0, 1.0, 13 * 4).reshape(13, 4)
        ipiv = np.array([2, 0, 1])
        payload = (g_rows, block, ipiv)

        def body(comm):
            data = payload if comm.rank == 1 else None
            return segmented_ring_bcast_nb(comm, data, 1, [0, 1, 2, 3], segments=5)

        for got in World(4).run(body):
            assert np.array_equal(got[0], g_rows)
            assert np.array_equal(got[1], block)
            assert np.array_equal(got[2], ipiv)


def _run(**kw):
    return DistributedHPL(seed=11, **kw).run()


def _assert_bitwise(a, b):
    assert np.array_equal(a.lu, b.lu)
    assert np.array_equal(a.ipiv, b.ipiv)
    assert np.array_equal(a.x, b.x)


class TestLookaheadBitwise:
    @pytest.mark.parametrize(
        "p,q", [(2, 2), (1, 2), (2, 1), (1, 1), (3, 2)]
    )
    def test_matches_synchronous_any_grid(self, p, q):
        cfg = dict(n=96, nb=32, p=p, q=q)
        sync = _run(**cfg)
        assert sync.passed and not sync.lookahead
        la = _run(**cfg, lookahead=True)
        assert la.passed and la.lookahead
        _assert_bitwise(sync, la)

    @pytest.mark.parametrize("algo", ["star", "ring", "ring-mod"])
    def test_matches_synchronous_every_bcast_shape(self, algo):
        cfg = dict(n=100, nb=32, p=2, q=2)  # ragged last panel
        sync = _run(**cfg)
        _assert_bitwise(sync, _run(**cfg, bcast_algo=algo, lookahead=True))

    def test_ring_mod_synchronous_path_matches_star(self):
        cfg = dict(n=96, nb=32, p=2, q=2)
        _assert_bitwise(_run(**cfg), _run(**cfg, bcast_algo="ring-mod"))

    def test_substrate_variant_matches(self):
        cfg = dict(n=96, nb=32, p=2, q=2, pack_cache=True, workers=2)
        _assert_bitwise(_run(**cfg), _run(**cfg, lookahead=True))

    def test_chunk_size_does_not_change_numerics(self):
        cfg = dict(n=96, nb=32, p=2, q=2, lookahead=True)
        _assert_bitwise(_run(**cfg), _run(**cfg, chunk_kb=4))

    def test_seeded_n1024_acceptance(self):
        """The ISSUE 3 acceptance configuration: seeded n=1024 on a
        2x2 grid, look-ahead + non-blocking bitwise-identical."""
        cfg = dict(n=1024, nb=128, p=2, q=2)
        sync = _run(**cfg)
        la = _run(**cfg, lookahead=True, bcast_algo="ring-mod")
        assert la.passed
        _assert_bitwise(sync, la)


class TestOverlapMetrics:
    def test_lookahead_reports_hidden_time(self):
        r = _run(n=256, nb=64, p=2, q=2, lookahead=True)
        assert r.hidden_comm_s > 0.0
        assert r.exposed_comm_s > 0.0
        gauges = r.metrics.to_dict()["gauges"]
        assert gauges["comm.overlap.hidden_s"] == pytest.approx(r.hidden_comm_s)
        assert gauges["comm.overlap.wait_s"] == pytest.approx(r.exposed_comm_s)
        assert gauges["comm.overlap.drain_s"] >= gauges["comm.overlap.hidden_s"]
        timers = r.metrics.to_dict()["timers"]
        assert timers["comm.overlap.stage_hidden_s"]["count"] == 256 // 64
        assert timers["comm.overlap.stage_wait_s"]["count"] == 256 // 64

    def test_synchronous_run_hides_nothing(self):
        r = _run(n=128, nb=32, p=2, q=2)
        assert r.hidden_comm_s == 0.0
        assert r.exposed_comm_s > 0.0
        assert r.metrics.to_dict()["gauges"]["comm.overlap.hidden_s"] == 0.0

    def test_result_fields_serialize(self):
        r = _run(n=96, nb=32, p=2, q=2, lookahead=True, bcast_algo="ring-mod")
        d = r.to_dict()
        assert d["lookahead"] is True
        assert d["bcast_algo"] == "ring-mod"
        assert d["hidden_comm_s"] > 0.0
        assert "lu" not in d  # ndarrays stay out of the JSON surface

    def test_invalid_chunk_kb_rejected(self):
        with pytest.raises(ValueError):
            DistributedHPL(64, 32, 1, 1, chunk_kb=0)
        with pytest.raises(ValueError):
            DistributedHPL(64, 32, 1, 1, bcast_algo="nope")
