"""Hardened-channel behaviour: heal, dedup, timeout taxonomy, clean close."""

import threading

import numpy as np
import pytest

from repro.cluster.comm import (
    CommCorruption,
    CommError,
    CommTimeout,
    RankDeadError,
    World,
)
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy

RETRY = RetryPolicy(comm_timeout_s=0.3, max_retries=2)


def _injector(dsl):
    return FaultInjector(FaultPlan.parse(dsl))


def _ping(comm):
    if comm.rank == 0:
        comm.send(np.arange(64.0), dest=1, tag=3)
        return None
    return comm.recv(source=0, tag=3).copy()


class TestHealing:
    def test_dropped_message_is_resent(self):
        world = World(2, injector=_injector("drop:op=send"), retry=RETRY)
        results = world.run(_ping)
        np.testing.assert_array_equal(results[1], np.arange(64.0))
        snap = world.comms[1].rstats.snapshot()
        assert snap["resend_requests"] >= 1
        assert world.comms[0].rstats.snapshot()["resends"] >= 1

    def test_corrupted_message_detected_and_resent(self):
        world = World(2, injector=_injector("seed=2;corrupt:op=send"),
                      retry=RETRY)
        results = world.run(_ping)
        np.testing.assert_array_equal(results[1], np.arange(64.0))
        assert world.comms[1].rstats.snapshot()["corruption_detected"] >= 1

    def test_duplicated_message_discarded(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(np.arange(64.0), dest=1, tag=3)
                comm.send("done", dest=1, tag=4)
                return None
            first = comm.recv(source=0, tag=3).copy()
            # Waiting on the second message pumps the duplicate of the first.
            assert comm.recv(source=0, tag=4) == "done"
            return first

        world = World(2, injector=_injector("duplicate:op=send"), retry=RETRY)
        results = world.run(body)
        np.testing.assert_array_equal(results[1], np.arange(64.0))
        assert world.comms[1].rstats.snapshot()["duplicates_dropped"] >= 1

    def test_resilient_collectives_match_plain(self):
        def body(comm):
            v = comm.bcast(np.full(8, comm.rank + 1.0), root=0)
            s = comm.allreduce(float(comm.rank))
            return (v.copy(), s)

        plain = World(3).run(body)
        healed = World(3, injector=_injector("seed=4;drop:op=bcast"),
                       retry=RETRY).run(body)
        for (pv, ps), (hv, hs) in zip(plain, healed):
            np.testing.assert_array_equal(pv, hv)
            assert ps == hs

    def test_byte_counters_ignore_resent_traffic(self):
        plain = World(2)
        plain.run(_ping)
        faulty = World(2, injector=_injector("drop:op=send;duplicate:op=send"),
                       retry=RETRY)
        faulty.run(_ping)
        assert (faulty.comms[0].stats.bytes_sent
                == plain.comms[0].stats.bytes_sent)


class TestFailureTaxonomy:
    def test_timeout_after_exhausted_retries(self):
        def body(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=5)  # never sent

        world = World(2, timeout_s=30.0, retry=RetryPolicy(
            comm_timeout_s=0.05, max_retries=2))
        with pytest.raises(CommTimeout):
            world.run(body)
        hist = world.comms[1].rstats.snapshot()["retry_histogram"]
        assert set(hist) == {1, 2, 3}  # initial attempt + two retries
        assert sum(hist.values()) == 3

    def test_recv_from_dead_rank_raises(self):
        def body(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            comm.recv(source=0, tag=1)

        with pytest.raises(RuntimeError, match="boom"):
            World(2, retry=RETRY).run(body)

    def test_declare_dead_surfaces_rank_dead(self):
        world = World(2, retry=RETRY)
        world.declare_dead(0)

        def body(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=1)

        with pytest.raises(RankDeadError):
            world.run(body)

    def test_exception_taxonomy(self):
        assert issubclass(CommTimeout, CommError)
        assert issubclass(CommCorruption, CommError)
        assert issubclass(RankDeadError, CommError)


class TestClose:
    def test_close_is_idempotent_and_reentrant(self):
        world = World(2, retry=RETRY)
        world.run(_ping)
        world.close()
        world.close()
        for comm in world.comms:
            comm.close()

    def test_context_manager_closes(self):
        with World(2, retry=RETRY) as world:
            world.run(_ping)
        world.close()  # already closed: no-op

    def test_close_drains_undelivered_pooled_parts(self):
        world = World(2, buffer_pool=True)

        def body(comm):
            if comm.rank == 0:
                # Chunked through the pool; the receiver never recvs it.
                comm.isend(np.ones(4096), dest=1, tag=9,
                           chunk_bytes=4096).wait()

        world.run(body)
        pool = world.comms[0].pool
        assert pool.active > 0  # segments parked in rank 1's mailbox
        world.close()
        assert pool.active == 0  # drain released them back to the arena

    def test_abort_mid_transfer_leaves_no_threads(self):
        before = threading.active_count()
        world = World(2, retry=RetryPolicy(comm_timeout_s=0.05, max_retries=0))

        def body(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=2)  # times out

        with pytest.raises(CommTimeout):
            world.run(body)
        world.close()
        assert threading.active_count() <= before
