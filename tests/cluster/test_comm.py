"""Simulated MPI world: point-to-point, collectives, stats, failures."""

import numpy as np
import pytest

from repro.cluster.comm import Comm, CommError, World


class TestPointToPoint:
    def test_send_recv(self):
        def body(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1)
                return None
            return comm.recv(source=0)

        results = World(2).run(body)
        assert results[1] == {"x": 1}

    def test_numpy_payload_is_copied(self):
        def body(comm):
            if comm.rank == 0:
                arr = np.arange(4.0)
                comm.send(arr, dest=1)
                arr[:] = -1  # must not affect the receiver
                return None
            got = comm.recv(source=0)
            return got.copy()

        results = World(2).run(body)
        np.testing.assert_array_equal(results[1], np.arange(4.0))

    def test_tag_matching_out_of_order(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=7)
                comm.send("second", dest=1, tag=9)
                return None
            second = comm.recv(source=0, tag=9)
            first = comm.recv(source=0, tag=7)
            return (first, second)

        results = World(2).run(body)
        assert results[1] == ("first", "second")

    def test_sendrecv_symmetric_exchange(self):
        def body(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(f"from{comm.rank}", peer)

        results = World(2).run(body)
        assert results == ["from1", "from0"]

    def test_recv_timeout_raises(self):
        def body(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # never sent

        with pytest.raises(CommError):
            World(2, timeout_s=0.2).run(body)

    def test_rank_exception_propagates(self):
        def body(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises((ValueError, CommError)):
            World(2, timeout_s=0.5).run(body)

    def test_bad_destination(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, dest=5)

        with pytest.raises(ValueError):
            World(2).run(body)


class TestCollectives:
    def test_bcast_world(self):
        def body(comm):
            data = np.arange(3.0) if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        for got in World(3).run(body):
            np.testing.assert_array_equal(got, np.arange(3.0))

    def test_bcast_subgroup(self):
        def body(comm):
            if comm.rank in (1, 2):
                return comm.bcast("hi" if comm.rank == 1 else None, root=1, ranks=[1, 2])
            return "out"

        assert World(3).run(body) == ["out", "hi", "hi"]

    def test_bcast_group_validation(self):
        def body(comm):
            comm.bcast("x", root=0, ranks=[1, 2])

        with pytest.raises(ValueError):
            World(3).run(body)

    def test_gather(self):
        def body(comm):
            return comm.gather(comm.rank * 10, root=0)

        results = World(4).run(body)
        assert results[0] == [0, 10, 20, 30]
        assert results[1] is None

    def test_allreduce_sum(self):
        def body(comm):
            return comm.allreduce(comm.rank + 1)

        assert World(4).run(body) == [10, 10, 10, 10]

    def test_allreduce_custom_op(self):
        def body(comm):
            return comm.allreduce(comm.rank, op=max)

        assert World(3).run(body) == [2, 2, 2]

    def test_barrier_synchronises(self):
        import time

        def body(comm):
            if comm.rank == 0:
                time.sleep(0.05)
            comm.barrier()
            return time.monotonic()

        times = World(3).run(body)
        assert max(times) - min(times) < 0.05


class TestStats:
    def test_bytes_counted(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            return comm.stats.bytes_sent

        sent = World(2).run(body)
        assert sent[0] == 800
        assert sent[1] == 0

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            World(0)
