"""Non-blocking communication: isend/irecv/wait/test/waitall, chunked
transfers, overlap accounting, recursive-doubling allreduce, and the
single-attribution traffic regression."""

import time

import numpy as np
import pytest

from repro.cluster.comm import (
    Comm,
    CommError,
    DEFAULT_CHUNK_BYTES,
    RecvRequest,
    SendRequest,
    World,
    waitall,
)


class TestIsendIrecv:
    def test_basic_roundtrip(self):
        def body(comm: Comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(10.0), 1, tag=3)
                assert isinstance(req, SendRequest)
                req.wait()
                return None
            got = comm.irecv(0, tag=3).wait()
            return got

        results = World(2).run(body)
        np.testing.assert_array_equal(results[1], np.arange(10.0))

    def test_send_buffer_isolated_after_wait(self):
        """The receiver sees the values as posted — mutating the buffer
        after the request completes cannot reach across ranks."""

        def body(comm: Comm):
            if comm.rank == 0:
                buf = np.ones(8)
                req = comm.isend(buf, 1)
                req.wait()
                buf[:] = -1.0  # after completion: must not alias
                comm.barrier()
                return None
            got = comm.recv(0)
            comm.barrier()
            return got

        results = World(2).run(body)
        np.testing.assert_array_equal(results[1], np.ones(8))

    def test_irecv_test_polls_without_blocking(self):
        def body(comm: Comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=9)
                assert isinstance(req, RecvRequest)
                seen_false = not req.test()  # nothing sent yet (probably)
                comm.barrier()  # rank 1 sends before this passes
                deadline = time.perf_counter() + 30.0
                while not req.test():
                    assert time.perf_counter() < deadline
                return seen_false, req.wait()
            comm.isend(np.float64(7.5), 0, tag=9).wait()
            comm.barrier()
            return None

        results = World(2).run(body)
        _seen_false, value = results[0]
        assert value == 7.5

    def test_wait_is_idempotent_and_returns_value(self):
        def body(comm: Comm):
            if comm.rank == 0:
                comm.send("payload", 1)
                return None
            req = comm.irecv(0)
            return req.wait(), req.wait()  # second wait returns cached value

        results = World(2).run(body)
        assert results[1] == ("payload", "payload")

    def test_waitall_mixed_requests(self):
        def body(comm: Comm):
            if comm.rank == 0:
                reqs = [comm.isend(np.full(4, r), r, tag=1) for r in (1, 2)]
                assert waitall(reqs) == [None, None]
                return None
            return comm.waitall([comm.irecv(0, tag=1)])[0]

        results = World(3).run(body)
        np.testing.assert_array_equal(results[1], np.full(4, 1))
        np.testing.assert_array_equal(results[2], np.full(4, 2))

    def test_irecv_timeout_raises(self):
        def body(comm: Comm):
            if comm.rank == 0:
                with pytest.raises(CommError):
                    comm.irecv(1, tag=4).wait(timeout=0.05)
            comm.barrier()

        World(2, timeout_s=10.0).run(body)

    def test_out_of_order_tags_via_stash(self):
        """Receives drain in any tag order; per-(source, tag) FIFO."""

        def body(comm: Comm):
            if comm.rank == 0:
                for tag in range(6):
                    comm.send(tag * 10, 1, tag=tag)
                for tag in range(6):  # same tag twice: FIFO order
                    comm.send(tag * 10 + 1, 1, tag=tag)
                return None
            got = [comm.recv(0, tag=tag) for tag in reversed(range(6))]
            got += [comm.recv(0, tag=tag) for tag in reversed(range(6))]
            return got

        results = World(2).run(body)
        assert results[1] == [50, 40, 30, 20, 10, 0, 51, 41, 31, 21, 11, 1]


class TestChunkedTransfers:
    def test_large_array_reassembles_bitwise(self):
        rng = np.random.default_rng(0)
        big = rng.standard_normal((64, 37))

        def body(comm: Comm):
            if comm.rank == 0:
                comm.isend(big, 1, chunk_bytes=1024).wait()
                return None
            return comm.recv(0)

        results = World(2).run(body)
        assert np.array_equal(results[1], big)
        assert results[1].shape == big.shape

    def test_mixed_payload_only_big_components_segment(self):
        rng = np.random.default_rng(1)
        payload = (
            np.arange(5),  # small: travels in the skeleton
            rng.standard_normal(4096),  # big: segmented
            {"meta": "x", "block": rng.standard_normal((32, 32))},
        )

        def body(comm: Comm):
            if comm.rank == 0:
                comm.isend(payload, 1, chunk_bytes=2048).wait()
                return None
            return comm.irecv(0).wait()

        got = World(2).run(body)[1]
        assert np.array_equal(got[0], payload[0])
        assert np.array_equal(got[1], payload[1])
        assert got[2]["meta"] == "x"
        assert np.array_equal(got[2]["block"], payload[2]["block"])

    def test_interleaved_chunked_streams_by_tag(self):
        """Two segmented transfers on different tags reassemble
        independently even when their segments interleave."""
        a = np.arange(3000.0)
        b = -np.arange(5000.0)

        def body(comm: Comm):
            if comm.rank == 0:
                r1 = comm.isend(a, 1, tag=1, chunk_bytes=4096)
                r2 = comm.isend(b, 1, tag=2, chunk_bytes=4096)
                waitall([r1, r2])
                return None
            got_b = comm.recv(0, tag=2)
            got_a = comm.recv(0, tag=1)
            return got_a, got_b

        got_a, got_b = World(2).run(body)[1]
        assert np.array_equal(got_a, a)
        assert np.array_equal(got_b, b)

    def test_chunked_bytes_accounted_once(self):
        big = np.zeros(100_000)  # 800 kB -> several default chunks

        def body(comm: Comm):
            if comm.rank == 0:
                comm.isend(big, 1, chunk_bytes=DEFAULT_CHUNK_BYTES).wait()
                return comm.stats.bytes_sent, dict(comm.stats.by_op)
            comm.recv(0)
            return None

        bytes_sent, by_op = World(2).run(body)[0]
        assert bytes_sent >= big.nbytes  # payload + skeleton header
        assert sum(by_op.values()) == bytes_sent


class TestOverlapAccounting:
    def test_hidden_time_accrues_when_compute_overlaps(self):
        big = np.zeros(400_000)  # 3.2 MB: a real drain

        def body(comm: Comm):
            if comm.rank == 0:
                req = comm.isend(big, 1, chunk_bytes=64 * 1024)
                time.sleep(0.05)  # "compute" while the send drains
                req.wait()
                return comm.stats.overlap_snapshot()
            comm.recv(0)
            return None

        snap = World(2).run(body)[0]
        assert snap["drain_s"] > 0.0
        assert snap["hidden_s"] > 0.0
        assert snap["hidden_s"] <= snap["drain_s"] + 1e-9

    def test_blocking_recv_records_wait(self):
        def body(comm: Comm):
            if comm.rank == 0:
                time.sleep(0.03)
                comm.send(1, 1)
                return None
            comm.recv(0)
            return comm.stats.overlap_snapshot()

        snap = World(2).run(body)[1]
        assert snap["wait_s"] > 0.0
        assert snap["hidden_s"] == 0.0  # no non-blocking sends posted


class TestRecursiveDoublingAllreduce:
    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_power_of_two_sum(self, size):
        results = World(size).run(lambda comm: comm.allreduce(comm.rank + 1.0))
        assert results == [size * (size + 1) / 2] * size

    @pytest.mark.parametrize("size", [3, 5, 6])
    def test_non_power_of_two_fallback(self, size):
        results = World(size).run(lambda comm: comm.allreduce(comm.rank + 1.0))
        assert results == [size * (size + 1) / 2] * size

    @pytest.mark.parametrize("size", [4, 6])
    def test_custom_op_and_arrays_bit_identical(self, size):
        def body(comm: Comm):
            value = np.array([comm.rank, -comm.rank, comm.rank * 0.5])
            return comm.allreduce(value, op=np.maximum)

        results = World(size).run(body)
        expected = np.array([size - 1, 0.0, (size - 1) * 0.5])
        for r in results:
            np.testing.assert_array_equal(r, expected)

    @pytest.mark.parametrize("size", [4, 8])
    def test_float_sum_identical_across_ranks(self, size):
        """The fixed rank-ordered combine tree makes every rank's float
        sum bitwise identical (not merely close)."""

        def body(comm: Comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(rng.standard_normal(64))

        results = World(size).run(body)
        for r in results[1:]:
            assert np.array_equal(r, results[0])

    def test_allreduce_traffic_attributed_to_allreduce(self):
        def body(comm: Comm):
            comm.allreduce(np.ones(100))
            return dict(comm.stats.by_op), comm.stats.bytes_sent

        for size in (4, 6):  # doubling path and fallback path
            for by_op, bytes_sent in World(size).run(body):
                assert sum(by_op.values()) == bytes_sent
                assert set(by_op) <= {"allreduce"}


class TestSingleAttributionRegression:
    """Satellite fix: bcast used to record payload bytes under both
    ``send`` (per message) and a lump-sum ``bcast`` bucket, so
    ``sum(by_op.values()) > bytes_sent`` at the root."""

    def test_bcast_root_counts_each_byte_once(self):
        payload = np.ones(1000)  # 8 kB per destination

        def body(comm: Comm):
            comm.bcast(payload if comm.rank == 0 else None, root=0)
            return comm.stats.bytes_sent, dict(comm.stats.by_op)

        results = World(4).run(body)
        root_bytes, root_by_op = results[0]
        assert sum(root_by_op.values()) == root_bytes
        assert root_by_op.get("bcast", 0) == root_bytes  # op name kept
        assert root_bytes == 3 * payload.nbytes  # one copy per non-root

    def test_all_collectives_sum_to_bytes_sent(self):
        def body(comm: Comm):
            comm.bcast(np.ones(64) if comm.rank == 0 else None, root=0)
            comm.gather(np.full(8, comm.rank), root=1)
            comm.allreduce(float(comm.rank))
            comm.send(np.zeros(4), (comm.rank + 1) % comm.size, tag=8)
            comm.recv((comm.rank - 1) % comm.size, tag=8)
            return comm.stats.bytes_sent, dict(comm.stats.by_op)

        for bytes_sent, by_op in World(4).run(body):
            assert sum(by_op.values()) == bytes_sent
