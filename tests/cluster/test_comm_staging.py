"""Send-side pooled staging: segments rent from the sender's arena and
``CommStats`` splits payload bytes into staged vs copied."""

import numpy as np

from repro.cluster.comm import World
from repro.obs.metrics import MetricsRegistry


def _exchange(comm, chunk_bytes=256):
    if comm.rank == 0:
        payload = {"a": np.arange(512.0), "tag": "hello"}
        req = comm.isend(payload, dest=1, chunk_bytes=chunk_bytes)
        req.wait()
        return None
    got = comm.recv(source=0)
    return got


class TestPooledStaging:
    def test_pooled_segments_counted_as_staged(self):
        world = World(2, buffer_pool=True)
        results = world.run(_exchange)
        np.testing.assert_array_equal(results[1]["a"], np.arange(512.0))
        stats = world.comms[0].stats
        assert stats.staged_bytes == 512 * 8
        assert stats.copied_bytes > 0  # the header skeleton
        assert stats.staged_bytes + stats.copied_bytes == stats.bytes_sent

    def test_unpooled_segments_counted_as_copied(self):
        world = World(2)
        results = world.run(_exchange)
        np.testing.assert_array_equal(results[1]["a"], np.arange(512.0))
        stats = world.comms[0].stats
        assert stats.staged_bytes == 0
        assert stats.copied_bytes == stats.bytes_sent

    def test_segments_return_to_sender_arena(self):
        world = World(2, buffer_pool=True)
        world.run(_exchange)
        pool = world.comms[0].pool
        assert pool.checkouts > 0
        assert pool.active == 0  # receiver released every staged segment
        assert pool.by_key.get("comm.segment", 0) == pool.checkouts

    def test_staged_transfer_reuses_arena_across_rounds(self):
        def body(comm):
            out = None
            for _ in range(4):
                out = _exchange(comm)
            return out

        world = World(2, buffer_pool=True)
        results = world.run(body)
        np.testing.assert_array_equal(results[1]["a"], np.arange(512.0))
        pool = world.comms[0].pool
        assert pool.reuses > 0
        assert pool.active == 0

    def test_receiver_never_aliases_the_arena(self):
        def body(comm):
            if comm.rank == 0:
                arr = np.full(512, 7.0)
                comm.isend(arr, dest=1, chunk_bytes=8192).wait()
                # next transfer reuses the same arena block
                comm.isend(np.zeros(512), dest=1, chunk_bytes=8192).wait()
                return None
            first = comm.recv(source=0)
            second = comm.recv(source=0)
            return first.copy(), second.copy()

        world = World(2, buffer_pool=True)
        first, second = world.run(body)[1]
        np.testing.assert_array_equal(first, np.full(512, 7.0))
        np.testing.assert_array_equal(second, np.zeros(512))

    def test_plain_send_is_all_copied(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(np.arange(16.0), dest=1)
                return None
            return comm.recv(source=0)

        world = World(2, buffer_pool=True)
        world.run(body)
        stats = world.comms[0].stats
        assert stats.staged_bytes == 0
        assert stats.copied_bytes == stats.bytes_sent == 16 * 8

    def test_staging_split_published_to_metrics(self):
        world = World(2, buffer_pool=True)
        world.run(_exchange)
        reg = MetricsRegistry()
        world.comms[0].stats.publish(reg, prefix="comm.rank0")
        snap = reg.to_dict()
        assert snap["counters"]["comm.rank0.staged_bytes"] == 512 * 8
        assert snap["counters"]["comm.rank0.copied_bytes"] > 0
