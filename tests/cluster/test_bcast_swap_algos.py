"""Broadcast algorithm variants and the long (spread) swap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.bcast_algos import (
    bcast_time_model,
    binomial_bcast,
    ring_bcast,
    segmented_ring_bcast,
)
from repro.cluster.comm import World
from repro.cluster.grid import BlockCyclic, ProcessGrid
from repro.cluster.swap import (
    exchange_pivot_rows,
    exchange_pivot_rows_long,
    pivot_pairs_from_ipiv,
    resolve_final_sources,
)
from repro.hpl.matgen import hpl_matrix


def run_bcast(algo, size, root, payload, **kw):
    group = list(range(size))

    def body(comm):
        data = payload if comm.rank == root else None
        return algo(comm, data, root, group, **kw)

    return World(size).run(body)


class TestBroadcastAlgorithms:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("algo", [ring_bcast, binomial_bcast])
    def test_everyone_gets_payload(self, algo, size):
        results = run_bcast(algo, size, root=0, payload={"k": 7})
        assert all(r == {"k": 7} for r in results)

    @pytest.mark.parametrize("root", [0, 1, 3])
    @pytest.mark.parametrize("algo", [ring_bcast, binomial_bcast])
    def test_nonzero_roots(self, algo, root):
        results = run_bcast(algo, 4, root=root, payload="x")
        assert results == ["x"] * 4

    @pytest.mark.parametrize("size", [2, 3, 6])
    def test_segmented_ring_arrays(self, size):
        arr = np.arange(24.0).reshape(4, 6)
        results = run_bcast(segmented_ring_bcast, size, 0, arr, segments=3)
        for r in results:
            np.testing.assert_array_equal(r, arr)

    def test_segmented_ring_single_rank(self):
        arr = np.arange(5.0)
        results = run_bcast(segmented_ring_bcast, 1, 0, arr)
        np.testing.assert_array_equal(results[0], arr)

    def test_group_subset(self):
        # Broadcast among ranks {1, 3} of a 4-rank world.
        def body(comm):
            if comm.rank in (1, 3):
                data = "p" if comm.rank == 1 else None
                return binomial_bcast(comm, data, 1, [1, 3])
            return None

        assert World(4).run(body) == [None, "p", None, "p"]

    def test_rank_outside_group_raises(self):
        def body(comm):
            return ring_bcast(comm, "x", 0, [0])

        with pytest.raises(ValueError):
            World(2).run(body)


class TestBcastTimeModel:
    def test_binomial_beats_ring_for_small_messages(self):
        small = 1024
        ring = bcast_time_model(small, 16, 6.0, 2e-6, "ring")
        tree = bcast_time_model(small, 16, 6.0, 2e-6, "binomial")
        assert tree < ring

    def test_segmented_ring_wins_for_large_messages(self):
        big = 1e9
        tree = bcast_time_model(big, 16, 6.0, 2e-6, "binomial")
        seg = bcast_time_model(big, 16, 6.0, 2e-6, "segmented-ring", segments=16)
        assert seg < tree

    def test_single_rank_is_free(self):
        assert bcast_time_model(1e9, 1, 6.0, 2e-6, "ring") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bcast_time_model(10, 4, 6.0, 1e-6, "warp")
        with pytest.raises(ValueError):
            bcast_time_model(-1, 4, 6.0, 1e-6, "ring")
        with pytest.raises(ValueError):
            bcast_time_model(10, 0, 6.0, 1e-6, "ring")


class TestResolveFinalSources:
    def test_single_swap(self):
        assert resolve_final_sources([(2, 5)]) == {2: 5, 5: 2}

    def test_identity_swaps_dropped(self):
        assert resolve_final_sources([(3, 3)]) == {}

    def test_three_cycle(self):
        # (0 1)(1 2) applied in order: row0 <- row1, row1 <- row2, row2 <- row0.
        src = resolve_final_sources([(0, 1), (1, 2)])
        assert src == {0: 1, 1: 2, 2: 0}

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=12))
    @settings(max_examples=40)
    def test_matches_sequential_application(self, pairs):
        content = {g: g * 100 for g in range(10)}
        for r0, r1 in pairs:
            content[r0], content[r1] = content[r1], content[r0]
        src = resolve_final_sources(pairs)
        for g in range(10):
            assert content[g] == src.get(g, g) * 100


class TestLongSwapEquivalence:
    def _run(self, fn, n, nb, p, q, pairs, seed=3):
        grid = ProcessGrid(p, q)
        bc = BlockCyclic(n, nb, grid)
        a_global = hpl_matrix(n, seed)

        def body(comm):
            gr, gc = grid.coords(comm.rank)
            rows, cols = bc.local_rows(gr), bc.local_cols(gc)
            a_loc = a_global[np.ix_(rows, cols)].copy()
            fn(comm, bc, a_loc, pairs, np.ones(cols.size, bool))
            return (rows, cols, a_loc)

        out = np.empty_like(a_global)
        for rows, cols, piece in World(grid.size).run(body):
            out[np.ix_(rows, cols)] = piece
        return out

    @pytest.mark.parametrize("p,q", [(2, 2), (3, 1), (2, 3)])
    def test_long_swap_equals_per_pivot_swap(self, p, q):
        n, nb = 24, 4
        ipiv = np.array([7, 3, 12, 3])
        pairs = pivot_pairs_from_ipiv(4, ipiv)
        a = self._run(exchange_pivot_rows, n, nb, p, q, pairs)
        b = self._run(exchange_pivot_rows_long, n, nb, p, q, pairs)
        np.testing.assert_array_equal(a, b)

    @given(
        st.lists(
            st.tuples(st.integers(0, 23), st.integers(0, 23)), min_size=1, max_size=8
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_long_swap_property(self, raw_pairs):
        n, nb = 24, 4
        a = self._run(exchange_pivot_rows, n, nb, 2, 2, raw_pairs)
        b = self._run(exchange_pivot_rows_long, n, nb, 2, 2, raw_pairs)
        np.testing.assert_array_equal(a, b)

    def test_long_swap_moves_less_traffic_for_repeated_rows(self):
        # A row swapped twice nets out; the long swap skips it entirely.
        n, nb = 16, 4
        grid = ProcessGrid(2, 1)
        bc = BlockCyclic(n, nb, grid)
        a_global = hpl_matrix(n, 5)
        pairs = [(0, 9), (0, 9)]  # net identity

        def body(comm):
            gr, gc = grid.coords(comm.rank)
            rows, cols = bc.local_rows(gr), bc.local_cols(gc)
            a_loc = a_global[np.ix_(rows, cols)].copy()
            exchange_pivot_rows_long(comm, bc, a_loc, pairs, np.ones(cols.size, bool))
            return comm.stats.bytes_sent

        assert sum(World(2).run(body)) == 0
