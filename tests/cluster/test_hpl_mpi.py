"""Distributed HPL: numerics vs single-node LU, residuals, traffic."""

import numpy as np
import pytest

from repro.cluster.hpl_mpi import DistributedHPL
from repro.cluster.comm import World
from repro.cluster.grid import BlockCyclic, ProcessGrid
from repro.cluster.swap import exchange_pivot_rows, pivot_pairs_from_ipiv
from repro.hpl.matgen import hpl_matrix
from repro.lu.factorize import blocked_lu


def reference(n, nb):
    a0 = hpl_matrix(n, 42)
    return blocked_lu(a0.copy(), nb=nb)


class TestDistributedFactorization:
    @pytest.mark.parametrize(
        "n,nb,p,q",
        [
            (48, 8, 2, 2),
            (48, 8, 1, 2),
            (48, 8, 2, 1),
            (60, 8, 2, 3),
            (60, 8, 3, 2),
            (64, 16, 1, 1),
        ],
    )
    def test_matches_single_node_lu(self, n, nb, p, q):
        r = DistributedHPL(n, nb, p, q).run()
        lu_ref, ipiv_ref = reference(n, nb)
        np.testing.assert_allclose(r.lu, lu_ref, rtol=1e-12, atol=1e-13)
        np.testing.assert_array_equal(r.ipiv, ipiv_ref)

    def test_ragged_blocks(self):
        # n not a multiple of nb: the last stage has a narrow panel.
        r = DistributedHPL(37, 5, 2, 2).run()
        lu_ref, ipiv_ref = reference(37, 5)
        np.testing.assert_allclose(r.lu, lu_ref, rtol=1e-12, atol=1e-13)
        np.testing.assert_array_equal(r.ipiv, ipiv_ref)

    def test_residual_passes(self):
        r = DistributedHPL(52, 8, 2, 2).run()
        assert r.passed
        assert r.residual < 16.0

    def test_solution_matches_numpy(self):
        from repro.hpl.matgen import hpl_system

        r = DistributedHPL(40, 8, 2, 2).run()
        a0, b = hpl_system(40, 42)
        np.testing.assert_allclose(r.x, np.linalg.solve(a0, b), rtol=1e-8, atol=1e-9)

    def test_grid_shape_does_not_change_answer(self):
        runs = [
            DistributedHPL(48, 8, p, q).run().lu
            for (p, q) in [(1, 1), (2, 2), (1, 4)]
        ]
        np.testing.assert_allclose(runs[0], runs[1], rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(runs[0], runs[2], rtol=1e-12, atol=1e-13)

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedHPL(0, 8, 2, 2)


class TestTraffic:
    def test_single_rank_sends_nothing(self):
        r = DistributedHPL(32, 8, 1, 1).run()
        assert r.total_bytes == 0

    def test_bigger_grid_means_more_traffic(self):
        small = DistributedHPL(48, 8, 1, 2).run()
        large = DistributedHPL(48, 8, 2, 3).run()
        assert large.total_bytes > small.total_bytes

    def test_bytes_by_rank_covers_total(self):
        r = DistributedHPL(48, 8, 2, 2).run()
        assert sum(r.bytes_by_rank) == r.total_bytes
        assert len(r.bytes_by_rank) == 4


class TestDistributedSwap:
    def test_exchange_matches_global_permutation(self):
        n, nb, p, q = 24, 4, 2, 2
        grid = ProcessGrid(p, q)
        bc = BlockCyclic(n, nb, grid)
        a_global = hpl_matrix(n, 7)
        ipiv = np.array([3, 1, 9, 3])  # local offsets within the panel at k0=4
        pairs = pivot_pairs_from_ipiv(4, ipiv)

        def body(comm):
            gr, gc = grid.coords(comm.rank)
            rows, cols = bc.local_rows(gr), bc.local_cols(gc)
            a_loc = a_global[np.ix_(rows, cols)].copy()
            mask = np.ones(cols.size, dtype=bool)
            exchange_pivot_rows(comm, bc, a_loc, pairs, mask)
            return (rows, cols, a_loc)

        pieces = World(grid.size).run(body)
        out = np.empty_like(a_global)
        for rows, cols, piece in pieces:
            out[np.ix_(rows, cols)] = piece
        expected = a_global.copy()
        for r0, r1 in pairs:
            expected[[r0, r1]] = expected[[r1, r0]]
        np.testing.assert_array_equal(out, expected)

    def test_identity_pivots_are_noop(self):
        n, nb = 16, 4
        grid = ProcessGrid(2, 1)
        bc = BlockCyclic(n, nb, grid)
        a_global = hpl_matrix(n, 9)
        pairs = pivot_pairs_from_ipiv(0, np.arange(4))

        def body(comm):
            gr, gc = grid.coords(comm.rank)
            rows, cols = bc.local_rows(gr), bc.local_cols(gc)
            a_loc = a_global[np.ix_(rows, cols)].copy()
            exchange_pivot_rows(comm, bc, a_loc, pairs, np.ones(cols.size, bool))
            return np.array_equal(a_loc, a_global[np.ix_(rows, cols)])

        assert all(World(2).run(body))
