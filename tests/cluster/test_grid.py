"""Process grid and block-cyclic index algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.grid import BlockCyclic, ProcessGrid


class TestProcessGrid:
    def test_coords_roundtrip(self):
        g = ProcessGrid(3, 4)
        for rank in range(12):
            assert g.rank_of(*g.coords(rank)) == rank

    def test_row_and_col_ranks(self):
        g = ProcessGrid(2, 3)
        assert g.row_ranks(1) == [3, 4, 5]
        assert g.col_ranks(2) == [2, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 2)
        with pytest.raises(ValueError):
            ProcessGrid(2, 2).coords(4)
        with pytest.raises(ValueError):
            ProcessGrid(2, 2).rank_of(2, 0)

    def test_table3_grids(self):
        # "The number of used nodes can be derived by multiplying P and Q."
        assert ProcessGrid(10, 10).size == 100
        assert ProcessGrid(2, 2).size == 4


class TestBlockCyclic:
    def test_block_ownership_cycles(self):
        bc = BlockCyclic(n=64, nb=8, grid=ProcessGrid(2, 2))
        assert bc.owner_of_block(0, 0) == (0, 0)
        assert bc.owner_of_block(1, 0) == (1, 0)
        assert bc.owner_of_block(2, 3) == (0, 1)

    def test_local_rows_partition_globals(self):
        bc = BlockCyclic(n=50, nb=8, grid=ProcessGrid(3, 2))
        all_rows = np.concatenate([bc.local_rows(r) for r in range(3)])
        assert sorted(all_rows.tolist()) == list(range(50))

    def test_local_cols_partition_globals(self):
        bc = BlockCyclic(n=45, nb=7, grid=ProcessGrid(2, 3))
        all_cols = np.concatenate([bc.local_cols(c) for c in range(3)])
        assert sorted(all_cols.tolist()) == list(range(45))

    def test_row_owner_matches_local_rows(self):
        bc = BlockCyclic(n=40, nb=6, grid=ProcessGrid(2, 2))
        for r in range(2):
            for i in bc.local_rows(r):
                assert bc.row_owner(int(i)) == r

    def test_global_to_local_row(self):
        bc = BlockCyclic(n=40, nb=6, grid=ProcessGrid(2, 2))
        for r in range(2):
            locs = bc.local_rows(r)
            for pos, i in enumerate(locs):
                assert bc.global_to_local_row(int(i)) == pos

    def test_local_shape_sums_to_global(self):
        grid = ProcessGrid(2, 3)
        bc = BlockCyclic(n=55, nb=8, grid=grid)
        total = sum(
            bc.local_shape(rank)[0] * bc.local_shape(rank)[1]
            for rank in range(grid.size)
        )
        assert total == 55 * 55

    @given(st.integers(1, 120), st.integers(1, 16), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=40)
    def test_partition_property(self, n, nb, p, q):
        bc = BlockCyclic(n=n, nb=nb, grid=ProcessGrid(p, q))
        rows = np.concatenate([bc.local_rows(r) for r in range(p)])
        assert sorted(rows.tolist()) == list(range(n))
        for r in range(p):
            lr = bc.local_rows(r)
            for pos, i in enumerate(lr):
                assert bc.global_to_local_row(int(i)) == pos
                assert bc.row_owner(int(i)) == r

    def test_bounds(self):
        bc = BlockCyclic(n=20, nb=5, grid=ProcessGrid(2, 2))
        with pytest.raises(IndexError):
            bc.owner_of_block(4, 0)
        with pytest.raises(IndexError):
            bc.global_to_local_row(20)
        with pytest.raises(ValueError):
            BlockCyclic(n=0, nb=5, grid=ProcessGrid(1, 1))
