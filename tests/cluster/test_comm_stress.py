"""Stress tests for the simulated MPI world: random traffic patterns."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.comm import World


class TestRandomTraffic:
    @given(
        size=st.integers(2, 5),
        n_msgs=st.integers(1, 15),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_all_to_one_delivery(self, size, n_msgs, seed):
        """Every rank floods rank 0 with tagged messages; all arrive."""

        def body(comm):
            if comm.rank == 0:
                got = []
                for src in range(1, comm.size):
                    for j in range(n_msgs):
                        got.append(comm.recv(source=src, tag=j))
                return sorted(got)
            r = random.Random(seed * 100 + comm.rank)
            order = list(range(n_msgs))
            r.shuffle(order)  # send tags out of order: recv must match
            for j in order:
                comm.send((comm.rank, j), dest=0, tag=j)
            return None

        results = World(size).run(body)
        expected = sorted((s, j) for s in range(1, size) for j in range(n_msgs))
        assert results[0] == expected

    @given(size=st.integers(2, 6), seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_random_ring_rotations(self, size, seed):
        """Payloads rotate around a ring a random number of steps and end
        up where arithmetic says they should."""
        steps = random.Random(seed).randrange(1, 2 * size)

        def body(comm):
            payload = np.full(4, float(comm.rank))
            for s in range(steps):
                nxt = (comm.rank + 1) % comm.size
                prv = (comm.rank - 1) % comm.size
                comm.send(payload, nxt, tag=s)
                payload = comm.recv(prv, tag=s)
            return int(payload[0])

        results = World(size).run(body)
        for rank, origin in enumerate(results):
            assert origin == (rank - steps) % size

    def test_concurrent_collectives_and_p2p(self):
        """Interleaved bcast/gather/p2p across 4 ranks stays consistent."""

        def body(comm):
            token = comm.bcast("t" if comm.rank == 2 else None, root=2)
            if comm.rank == 0:
                comm.send(np.arange(8.0), dest=3, tag=42)
            sums = comm.allreduce(comm.rank)
            if comm.rank == 3:
                arr = comm.recv(source=0, tag=42)
                assert arr.sum() == 28.0
            gathered = comm.gather((comm.rank, token), root=1)
            return (token, sums, gathered)

        results = World(4).run(body)
        assert all(r[0] == "t" for r in results)
        assert all(r[1] == 6 for r in results)
        assert results[1][2] == [(i, "t") for i in range(4)]

    def test_many_barriers_in_a_row(self):
        def body(comm):
            for _ in range(50):
                comm.barrier()
            return True

        assert all(World(4).run(body))
