"""The complete multi-node hybrid system, executed numerically: the
distributed HPL with every rank's trailing update going through the
offload engine."""

import numpy as np
import pytest

from repro.cluster.hpl_mpi import DistributedHPL
from repro.hpl.matgen import hpl_system


class TestDistributedHybrid:
    @pytest.mark.parametrize("p,q", [(1, 1), (2, 2), (2, 3)])
    def test_offloaded_updates_pass_residual(self, p, q):
        r = DistributedHPL(48, 8, p, q, use_offload=True).run()
        assert r.passed
        assert r.residual < 16.0

    def test_matches_plain_distributed_run(self):
        plain = DistributedHPL(48, 8, 2, 2, use_offload=False).run()
        hybrid = DistributedHPL(48, 8, 2, 2, use_offload=True).run()
        # Different GEMM summation orders: equal to numerical accuracy.
        np.testing.assert_allclose(hybrid.lu, plain.lu, rtol=1e-10, atol=1e-11)
        np.testing.assert_array_equal(hybrid.ipiv, plain.ipiv)

    def test_solution_solves_original_system(self):
        r = DistributedHPL(40, 8, 2, 2, use_offload=True).run()
        a0, b = hpl_system(40, 42)
        np.testing.assert_allclose(a0 @ r.x, b, rtol=1e-8, atol=1e-8)

    def test_ragged_blocks_with_offload(self):
        r = DistributedHPL(37, 5, 2, 2, use_offload=True).run()
        assert r.passed
