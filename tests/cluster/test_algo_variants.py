"""Algorithm variants inside the real distributed HPL: every broadcast
and swap choice must produce the identical factorization."""

import numpy as np
import pytest

from repro.cluster.hpl_mpi import DistributedHPL


class TestVariantEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self):
        return DistributedHPL(48, 8, 2, 3).run()

    @pytest.mark.parametrize("bcast", ["ring", "binomial"])
    def test_bcast_variants_identical(self, baseline, bcast):
        r = DistributedHPL(48, 8, 2, 3, bcast_algo=bcast).run()
        np.testing.assert_array_equal(r.lu, baseline.lu)
        np.testing.assert_array_equal(r.ipiv, baseline.ipiv)

    def test_long_swap_identical(self, baseline):
        r = DistributedHPL(48, 8, 2, 3, swap_algo="long").run()
        np.testing.assert_array_equal(r.lu, baseline.lu)
        np.testing.assert_array_equal(r.ipiv, baseline.ipiv)

    def test_all_variants_combined(self, baseline):
        r = DistributedHPL(
            48, 8, 2, 3, bcast_algo="binomial", swap_algo="long"
        ).run()
        np.testing.assert_array_equal(r.lu, baseline.lu)
        assert r.passed

    def test_long_swap_sends_fewer_messages_per_stage(self):
        pair = DistributedHPL(64, 8, 4, 1, swap_algo="pairwise").run()
        long = DistributedHPL(64, 8, 4, 1, swap_algo="long").run()
        # Same answer, batched exchange: fewer total bytes is not
        # guaranteed (payload dicts carry keys) but messages drop a lot.
        np.testing.assert_array_equal(pair.lu, long.lu)

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedHPL(16, 4, 1, 1, bcast_algo="warp")
        with pytest.raises(ValueError):
            DistributedHPL(16, 4, 1, 1, swap_algo="teleport")
