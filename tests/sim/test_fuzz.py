"""Fuzz tests for the DES engine: random process networks terminate
with consistent state."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Barrier, Lock, Simulator, Store


class TestRandomLockNetworks:
    @given(
        n_workers=st.integers(1, 12),
        n_locks=st.integers(1, 4),
        n_ops=st.integers(1, 30),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_no_deadlock_with_single_lock_holding(self, n_workers, n_locks, n_ops, seed):
        # Workers acquire one lock at a time (no nesting): must drain.
        sim = Simulator()
        rng = random.Random(seed)
        locks = [Lock(sim, service_time=0.01) for _ in range(n_locks)]
        completed = []

        def worker(i):
            r = random.Random(seed * 1000 + i)
            for _ in range(n_ops):
                lock = locks[r.randrange(n_locks)]
                yield from lock.acquire()
                yield r.random() * 0.1
                lock.release()
            completed.append(i)

        for i in range(n_workers):
            sim.process(worker(i))
        sim.run()
        assert sorted(completed) == list(range(n_workers))
        for lock in locks:
            assert not lock.locked

    @given(
        n_workers=st.integers(2, 10),
        rounds=st.integers(1, 8),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_barrier_rounds_always_complete(self, n_workers, rounds, seed):
        sim = Simulator()
        bar = Barrier(sim, parties=n_workers, overhead=0.001)
        log = []

        def worker(i):
            r = random.Random(seed * 7 + i)
            for phase in range(rounds):
                yield r.random()
                yield from bar.wait()
                log.append((phase, i, sim.now))

        for i in range(n_workers):
            sim.process(worker(i))
        sim.run()
        assert bar.generations == rounds
        # Within each phase every worker leaves at the same time.
        for phase in range(rounds):
            times = {t for (p, _i, t) in log if p == phase}
            assert len(times) == 1

    @given(
        n_producers=st.integers(1, 5),
        n_consumers=st.integers(1, 5),
        items_each=st.integers(0, 20),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_producer_consumer_conservation(
        self, n_producers, n_consumers, items_each, seed
    ):
        sim = Simulator()
        store = Store(sim)
        total = n_producers * items_each
        consumed = []

        def producer(i):
            r = random.Random(seed + i)
            for j in range(items_each):
                yield r.random() * 0.01
                store.put((i, j))

        def consumer(i, quota):
            for _ in range(quota):
                item = yield from store.get()
                consumed.append(item)

        base, extra = divmod(total, n_consumers)
        for i in range(n_producers):
            sim.process(producer(i))
        for i in range(n_consumers):
            sim.process(consumer(i, base + (1 if i < extra else 0)))
        sim.run()
        assert len(consumed) == total
        assert len(set(consumed)) == total  # each item exactly once
        assert len(store) == 0

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_time_is_monotone_under_random_workload(self, seed):
        sim = Simulator()
        rng = random.Random(seed)
        stamps = []

        def proc(i):
            r = random.Random(seed * 31 + i)
            for _ in range(r.randrange(1, 10)):
                yield r.random()
                stamps.append(sim.now)

        for i in range(rng.randrange(1, 8)):
            sim.process(proc(i))
        sim.run()
        assert stamps == sorted(stamps)
