"""Lock/Barrier/Store semantics under simulated time."""

import pytest

from repro.sim import Barrier, Lock, Simulator, Store


class TestLock:
    def test_mutual_exclusion_serialises_holders(self):
        sim = Simulator()
        lock = Lock(sim)
        log = []

        def worker(i):
            yield from lock.acquire()
            log.append(("in", i, sim.now))
            yield 2.0
            log.append(("out", i, sim.now))
            lock.release()

        for i in range(3):
            sim.process(worker(i))
        sim.run()
        # Each holder's exit precedes the next holder's entry.
        times = [t for (_, _, t) in log]
        assert times == [0.0, 2.0, 2.0, 4.0, 4.0, 6.0]

    def test_fifo_order(self):
        sim = Simulator()
        lock = Lock(sim)
        order = []

        def worker(i):
            yield from lock.acquire()
            order.append(i)
            yield 1.0
            lock.release()

        for i in range(5):
            sim.process(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_service_time_charged(self):
        sim = Simulator()
        lock = Lock(sim, service_time=0.5)
        done = []

        def worker():
            yield from lock.acquire()
            done.append(sim.now)
            lock.release()

        sim.process(worker())
        sim.run()
        assert done == [0.5]

    def test_release_unlocked_raises(self):
        sim = Simulator()
        with pytest.raises(RuntimeError):
            Lock(sim).release()

    def test_wait_statistics(self):
        sim = Simulator()
        lock = Lock(sim)

        def worker():
            yield from lock.acquire()
            yield 3.0
            lock.release()

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert lock.acquisitions == 2
        assert lock.total_wait == pytest.approx(3.0)
        assert lock.mean_wait == pytest.approx(1.5)
        assert lock.max_queue_len == 1

    def test_negative_service_time_raises(self):
        with pytest.raises(ValueError):
            Lock(Simulator(), service_time=-1.0)


class TestBarrier:
    def test_all_parties_released_together(self):
        sim = Simulator()
        bar = Barrier(sim, parties=3)
        released = []

        def worker(i, delay):
            yield delay
            yield from bar.wait()
            released.append((i, sim.now))

        sim.process(worker(0, 1.0))
        sim.process(worker(1, 5.0))
        sim.process(worker(2, 3.0))
        sim.run()
        assert sorted(released) == [(0, 5.0), (1, 5.0), (2, 5.0)]

    def test_barrier_reusable_across_generations(self):
        sim = Simulator()
        bar = Barrier(sim, parties=2)
        log = []

        def worker(i):
            for phase in range(3):
                yield (i + 1) * 1.0
                yield from bar.wait()
                log.append((phase, i, sim.now))

        sim.process(worker(0))
        sim.process(worker(1))
        sim.run()
        assert bar.generations == 3
        # Both workers leave each phase at the slower worker's time.
        phase_times = {}
        for phase, _i, t in log:
            phase_times.setdefault(phase, set()).add(t)
        assert all(len(ts) == 1 for ts in phase_times.values())

    def test_overhead_charged_to_every_party(self):
        sim = Simulator()
        bar = Barrier(sim, parties=2, overhead=0.25)
        out = []

        def worker():
            yield from bar.wait()
            out.append(sim.now)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert out == [0.25, 0.25]

    def test_single_party_barrier_is_noop(self):
        sim = Simulator()
        bar = Barrier(sim, parties=1)
        out = []

        def worker():
            yield from bar.wait()
            out.append(sim.now)

        sim.process(worker())
        sim.run()
        assert out == [0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Barrier(Simulator(), parties=0)
        with pytest.raises(ValueError):
            Barrier(Simulator(), parties=2, overhead=-1)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield from store.get()
            got.append((item, sim.now))

        store.put("x")
        sim.process(consumer())
        sim.run()
        assert got == [("x", 0.0)]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield from store.get()
            got.append((item, sim.now))

        def producer():
            yield 4.0
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 4.0)]

    def test_fifo_items_and_consumers(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(i):
            item = yield from store.get()
            got.append((i, item))

        for i in range(3):
            sim.process(consumer(i))

        def producer():
            yield 1.0
            for x in "abc":
                store.put(x)

        sim.process(producer())
        sim.run()
        assert got == [(0, "a"), (1, "b"), (2, "c")]

    def test_len_counts_buffered_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
