"""DES engine semantics: timeouts, events, joins, determinism."""

import pytest

from repro.sim import Event, Interrupt, Simulator


class TestTimeouts:
    def test_simple_delay(self):
        sim = Simulator()
        log = []

        def proc():
            yield 5.0
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0]

    def test_sequential_delays_accumulate(self):
        sim = Simulator()
        log = []

        def proc():
            yield 1.0
            yield 2.5
            log.append(sim.now)

        sim.process(proc())
        assert sim.run() == 3.5
        assert log == [3.5]

    def test_negative_delay_raises(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_run_until_stops_clock(self):
        sim = Simulator()

        def proc():
            yield 100.0

        sim.process(proc())
        assert sim.run(until=10.0) == 10.0

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield "nope"

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()


class TestEvents:
    def test_event_wakes_waiter_with_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        def trigger():
            yield 3.0
            ev.succeed("payload")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert got == [(3.0, "payload")]

    def test_wait_on_already_triggered_event_resumes_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        sim.process(waiter())
        sim.run()
        assert got == [42]

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        ev = sim.event()
        woke = []

        def waiter(i):
            yield ev
            woke.append(i)

        for i in range(5):
            sim.process(waiter(i))

        def trigger():
            yield 1.0
            ev.succeed()

        sim.process(trigger())
        sim.run()
        assert woke == [0, 1, 2, 3, 4]  # FIFO wake order

    def test_timeout_event(self):
        sim = Simulator()
        got = []

        def waiter():
            v = yield sim.timeout_event(4.0, "late")
            got.append((sim.now, v))

        sim.process(waiter())
        sim.run()
        assert got == [(4.0, "late")]


class TestJoinAndCombinators:
    def test_join_child_process(self):
        sim = Simulator()
        log = []

        def child():
            yield 2.0
            return "result"

        def parent():
            value = yield sim.process(child())
            log.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert log == [(2.0, "result")]

    def test_join_finished_process(self):
        sim = Simulator()
        log = []

        def child():
            yield 1.0
            return 7

        def parent(p):
            yield 5.0
            value = yield p
            log.append((sim.now, value))

        p = sim.process(child())
        sim.process(parent(p))
        sim.run()
        assert log == [(5.0, 7)]

    def test_any_of_returns_first(self):
        sim = Simulator()
        got = []

        def waiter():
            idx, val = yield sim.any_of(
                [sim.timeout_event(5.0, "slow"), sim.timeout_event(2.0, "fast")]
            )
            got.append((sim.now, idx, val))

        sim.process(waiter())
        sim.run()
        assert got == [(2.0, 1, "fast")]

    def test_all_of_waits_for_all(self):
        sim = Simulator()
        got = []

        def waiter():
            yield sim.all_of([sim.timeout_event(1.0), sim.timeout_event(6.0)])
            got.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert got == [6.0]

    def test_all_of_empty_list_immediate(self):
        sim = Simulator()
        got = []

        def waiter():
            yield sim.all_of([])
            got.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert got == [0.0]


class TestInterrupt:
    def test_interrupt_waiting_process(self):
        sim = Simulator()
        log = []

        def victim():
            try:
                yield 100.0
            except Interrupt as exc:
                log.append((sim.now, exc.cause))

        def attacker(p):
            yield 3.0
            p.interrupt("stop")

        p = sim.process(victim())
        sim.process(attacker(p))
        sim.run()
        assert log == [(3.0, "stop")]

    def test_interrupt_removes_from_event_waiters(self):
        sim = Simulator()
        ev = sim.event()
        log = []

        def victim():
            try:
                yield ev
            except Interrupt:
                log.append("interrupted")

        def attacker(p):
            yield 1.0
            p.interrupt()
            yield 1.0
            ev.succeed()  # must not resume the victim twice

        p = sim.process(victim())
        sim.process(attacker(p))
        sim.run()
        assert log == ["interrupted"]

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield 0.5

        p = sim.process(quick())
        sim.run()
        p.interrupt()  # no exception
        sim.run()


class TestDeterminism:
    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        order = []

        def proc(i):
            yield 1.0
            order.append(i)

        for i in range(10):
            sim.process(proc(i))
        sim.run()
        assert order == list(range(10))

    def test_repeated_runs_identical(self):
        def build():
            sim = Simulator()
            order = []

            def proc(i, d):
                yield d
                order.append((i, sim.now))

            for i in range(20):
                sim.process(proc(i, (i * 7) % 5 + 0.5))
            sim.run()
            return order

        assert build() == build()
