"""TraceRecorder aggregation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import TraceRecorder


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.record("w0", "dgemm", 0.0, 4.0)
    t.record("w0", "panel", 4.0, 5.0)
    t.record("w1", "dgemm", 1.0, 3.0)
    t.record("w1", "swap", 3.0, 4.5)
    return t


class TestAggregation:
    def test_makespan(self, trace):
        assert trace.makespan == 5.0

    def test_busy_time_filters(self, trace):
        assert trace.busy_time() == pytest.approx(8.5)
        assert trace.busy_time(worker="w0") == pytest.approx(5.0)
        assert trace.busy_time(kind="dgemm") == pytest.approx(6.0)
        assert trace.busy_time(worker="w1", kind="swap") == pytest.approx(1.5)

    def test_time_by_kind(self, trace):
        by_kind = trace.time_by_kind()
        assert by_kind == {
            "dgemm": pytest.approx(6.0),
            "panel": pytest.approx(1.0),
            "swap": pytest.approx(1.5),
        }

    def test_idle_fraction(self, trace):
        assert trace.idle_fraction("w0") == pytest.approx(0.0)
        assert trace.idle_fraction("w1") == pytest.approx(1.5 / 5.0)

    def test_idle_fraction_with_custom_end(self, trace):
        assert trace.idle_fraction("w1", t_end=7.0) == pytest.approx(3.5 / 7.0)

    def test_window_by_kind_clips(self, trace):
        window = trace.window_by_kind(2.0, 4.25)
        assert window["dgemm"] == pytest.approx(3.0)  # w0: 2, w1: 1
        assert window["panel"] == pytest.approx(0.25)
        assert window["swap"] == pytest.approx(1.25)

    def test_workers_and_kinds_preserve_first_seen_order(self, trace):
        assert trace.workers() == ["w0", "w1"]
        assert trace.kinds() == ["dgemm", "panel", "swap"]

    def test_utilisation(self, trace):
        expected = (1.0 + (1.0 - 1.5 / 5.0)) / 2
        assert trace.utilisation() == pytest.approx(expected)

    def test_spans_for(self, trace):
        assert [s.kind for s in trace.spans_for("w1")] == ["dgemm", "swap"]


class TestValidation:
    def test_reversed_span_raises(self):
        with pytest.raises(ValueError):
            TraceRecorder().record("w", "k", 2.0, 1.0)

    def test_reversed_window_raises(self, trace):
        with pytest.raises(ValueError):
            trace.window_by_kind(3.0, 2.0)

    def test_empty_trace(self):
        t = TraceRecorder()
        assert t.makespan == 0.0
        assert t.busy_time() == 0.0
        assert t.utilisation() == 0.0
        assert t.idle_fraction("ghost") == 0.0


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.sampled_from(["x", "y"]),
                st.floats(0, 100, allow_nan=False),
                st.floats(0, 100, allow_nan=False),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_busy_time_decomposes_by_kind_and_worker(self, raw):
        t = TraceRecorder()
        for w, k, a, b in raw:
            lo, hi = min(a, b), max(a, b)
            t.record(w, k, lo, hi)
        total = t.busy_time()
        assert total == pytest.approx(sum(t.time_by_kind().values()), abs=1e-9)
        assert total == pytest.approx(
            sum(t.busy_time(worker=w) for w in t.workers()), abs=1e-9
        )
        # Full-range window equals unclipped totals.
        if t.spans:
            full = t.window_by_kind(0.0, t.makespan + 1)
            assert sum(full.values()) == pytest.approx(total, abs=1e-9)
