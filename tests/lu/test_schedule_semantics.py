"""Temporal semantics of the simulated schedules: the trace itself must
respect every DAG dependency (not just the numeric execution order)."""

import re
from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lu.dynamic import DynamicScheduler
from repro.lu.static_la import StaticLookaheadScheduler

_INFO = re.compile(r"s(\d+)p(\d+)")


def task_windows(trace):
    """(stage, panel) -> (start, end) across that task's phase spans."""
    windows = defaultdict(lambda: [float("inf"), 0.0])
    for span in trace.spans:
        if not span.info:
            continue
        m = _INFO.fullmatch(span.info.replace("s", "s", 1)) or _INFO.match(span.info)
        if not m:
            continue
        key = (int(m.group(1)), int(m.group(2)))
        windows[key][0] = min(windows[key][0], span.start)
        windows[key][1] = max(windows[key][1], span.end)
    return {k: tuple(v) for k, v in windows.items()}


def panel_windows(trace):
    """stage -> (start, end) of its DGETRF spans (static scheme tags
    panels with 's<stage>' only)."""
    out = {}
    for span in trace.spans:
        if span.kind != "dgetrf" or not span.info:
            continue
        m = re.match(r"s(\d+)", span.info)
        if not m:
            continue
        stage = int(m.group(1))
        lo, hi = out.get(stage, (float("inf"), 0.0))
        out[stage] = (min(lo, span.start), max(hi, span.end))
    return out


class TestDynamicTemporalDependencies:
    @given(
        n=st.sampled_from([3000, 6000, 9000]),
        nb=st.sampled_from([250, 300, 500]),
    )
    @settings(max_examples=8, deadline=None)
    def test_trace_respects_dag(self, n, nb):
        r = DynamicScheduler(n, nb=nb).run()
        windows = task_windows(r.trace)
        panels = {
            s: w for (s, p), w in windows.items() if s == p
        }  # PANEL tasks have stage == panel
        eps = 1e-9
        for (stage, panel), (start, _end) in windows.items():
            if stage == panel:
                # Panel(i) starts only after update(i-1, i) ended.
                if stage > 0:
                    dep = windows.get((stage - 1, panel))
                    assert dep is not None
                    assert start >= dep[1] - eps
            else:
                # Update(i, p) starts only after panel(i) ended and after
                # update(i-1, p) ended.
                assert start >= panels[stage][1] - eps
                if stage > 0:
                    assert start >= windows[(stage - 1, panel)][1] - eps

    def test_every_task_appears_exactly_once(self):
        nb, n = 300, 6000
        r = DynamicScheduler(n, nb=nb).run()
        windows = task_windows(r.trace)
        panels = -(-n // nb)
        expected = {(i, i) for i in range(panels)} | {
            (i, p) for i in range(panels) for p in range(i + 1, panels)
        }
        assert set(windows) == expected


class TestStaticTemporalStructure:
    def test_stage_barrier_ordering(self):
        # In the static scheme, no stage-i+1 activity may begin before
        # stage i's panel (factored via look-ahead during stage i) ends.
        r = StaticLookaheadScheduler(6000, nb=300).run()
        panels = panel_windows(r.trace)
        stages = sorted(panels)
        for a, b in zip(stages, stages[1:]):
            assert panels[b][0] >= panels[a][0]

    def test_barrier_count_matches_stages(self):
        r = StaticLookaheadScheduler(6000, nb=300).run()
        barrier_spans = [s for s in r.trace.spans if s.kind == "barrier"]
        assert len(barrier_spans) == r.barriers == 19
