"""Single-precision bitwise determinism across executors and workers.

The MxP scheme leans on the factorization substrate being precision-
agnostic: the blocked LU, the stripe GEMM and the pooled buffers all
operate on the array's own dtype, so a float32 run must keep exactly
the determinism contract the float64 paths pin elsewhere — identical
bits at any worker count, on the thread and the process executor, with
and without the pack cache. Rounding happens in the same order through
every fan-out, so this is equality, not tolerance.
"""

import numpy as np
import pytest

from repro.blas.gemm import gemm
from repro.hpl.matgen import hpl_system
from repro.lu.factorize import blocked_lu, lu_solve
from repro.parallel import ProcessTileExecutor, TileExecutor


@pytest.fixture(scope="module")
def sp_matrix():
    a, _b = hpl_system(192, dtype=np.float32)
    return a


@pytest.fixture(scope="module")
def sp_reference(sp_matrix):
    return blocked_lu(sp_matrix.copy(), nb=48)


class TestSPBlockedLU:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_thread_workers_bitwise_match_serial(
        self, sp_matrix, sp_reference, workers
    ):
        lu_ref, ipiv_ref = sp_reference
        with TileExecutor(workers) as ex:
            lu, ipiv = blocked_lu(
                sp_matrix.copy(), nb=48, pack_cache=True, workers=ex
            )
        assert lu.dtype == np.float32
        assert np.array_equal(lu_ref, lu)
        assert np.array_equal(ipiv_ref, ipiv)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_process_workers_bitwise_match_serial(
        self, sp_matrix, sp_reference, workers
    ):
        lu_ref, ipiv_ref = sp_reference
        with ProcessTileExecutor(workers=workers) as ex:
            lu, ipiv = blocked_lu(
                sp_matrix.copy(), nb=48, pack_cache=True, workers=ex
            )
            assert ex.arena.active == 0
        assert lu.dtype == np.float32
        assert np.array_equal(lu_ref, lu)
        assert np.array_equal(ipiv_ref, ipiv)

    def test_sp_solve_is_deterministic(self, sp_reference):
        a, b = hpl_system(192, dtype=np.float32)
        lu, ipiv = sp_reference
        x1 = lu_solve(lu, ipiv, b)
        x2 = lu_solve(lu.copy(), ipiv.copy(), b.copy())
        assert x1.dtype == np.float32
        assert np.array_equal(x1, x2)


class TestSPGemm:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_stripe_gemm_bitwise_across_backends(self, workers):
        rng = np.random.default_rng(11)
        a = rng.standard_normal((160, 96)).astype(np.float32)
        b = rng.standard_normal((96, 128)).astype(np.float32)
        c0 = rng.standard_normal((160, 128)).astype(np.float32)
        ref = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0)
        assert ref.dtype == np.float32
        with TileExecutor(workers) as tex:
            thread = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0, executor=tex)
        with ProcessTileExecutor(workers=workers) as pex:
            proc = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0, executor=pex)
        assert np.array_equal(ref, thread)
        assert np.array_equal(ref, proc)
