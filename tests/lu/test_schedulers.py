"""Dynamic vs static look-ahead schedulers: timing shape and numerics."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.lu.dynamic import (
    DynamicScheduler,
    SuperStage,
    _split_cores,
    plan_superstages,
)
from repro.lu.static_la import StaticLookaheadScheduler
from repro.lu.tasks import LUWorkspace
from repro.lu.timing import LUTiming


class TestTimingModel:
    def test_panel_time_decreases_with_cores(self):
        t = LUTiming()
        assert t.panel_time(5000, 300, 8) < t.panel_time(5000, 300, 2)

    def test_panel_scaling_sublinear(self):
        t = LUTiming()
        speedup = t.panel_time(5000, 300, 1) / t.panel_time(5000, 300, 16)
        assert 1 < speedup < 16

    def test_update_components_positive(self):
        t = LUTiming()
        swap, trsm, gemm = t.update_components(4000, 300, 300, 4)
        assert swap > 0 and trsm > 0 and gemm > 0
        assert gemm > trsm  # the GEMM dominates an update task

    def test_update_time_is_component_sum(self):
        t = LUTiming()
        comps = t.update_components(4000, 300, 300, 4, bw_sharers=2)
        assert t.update_time(4000, 300, 300, 4, bw_sharers=2) == pytest.approx(
            sum(comps)
        )

    def test_swap_sharers_slow_it_down(self):
        t = LUTiming()
        assert t.swap_time(300, 1000, 4) == pytest.approx(4 * t.swap_time(300, 1000, 1))

    def test_flop_counts(self):
        assert LUTiming.lu_flops(3000) == pytest.approx(2 / 3 * 27e9)
        assert LUTiming.hpl_flops(3000) == pytest.approx(2 / 3 * 27e9 + 2 * 9e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LUTiming().panel_time(0, 300, 4)


class TestPlanner:
    def test_split_cores_uses_all(self):
        assert sum(_split_cores(60, 7)) == 60
        assert max(_split_cores(60, 7)) - min(_split_cores(60, 7)) <= 1

    def test_plan_covers_all_stages(self):
        plan = plan_superstages(100, 60, 30000, 300, LUTiming())
        assert plan[0].start == 0
        assert plan[-1].end == 100
        for a, b in zip(plan, plan[1:]):
            assert a.end == b.start

    def test_late_superstages_have_wider_groups(self):
        plan = plan_superstages(100, 60, 30000, 300, LUTiming())
        first_width = max(plan[0].group_cores)
        last_width = max(plan[-1].group_cores)
        assert last_width >= first_width
        assert plan[-1].n_groups <= plan[0].n_groups

    def test_small_problem_gets_few_wide_groups(self):
        plan = plan_superstages(4, 60, 1200, 300, LUTiming())
        assert plan[0].n_groups <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_superstages(0, 60, 300, 300, LUTiming())
        with pytest.raises(ValueError):
            plan_superstages(10, 60, 3000, 300, LUTiming(), shrink=1.5)


class TestFigure6Shape:
    """The claims of Section IV-B / Figure 6."""

    def test_dynamic_beats_static_at_small_sizes(self):
        for n in (2000, 5000, 8000):
            dyn = DynamicScheduler(n, nb=300).run()
            sta = StaticLookaheadScheduler(n, nb=300).run()
            assert dyn.gflops > sta.gflops

    def test_schemes_converge_at_30k(self):
        dyn = DynamicScheduler(30000, nb=300).run()
        sta = StaticLookaheadScheduler(30000, nb=300).run()
        # "For the 30K problem, both schemes achieve 832 GFLOPS."
        assert dyn.gflops / sta.gflops < 1.10

    def test_relative_gap_shrinks_with_size(self):
        gaps = []
        for n in (3000, 8000, 30000):
            dyn = DynamicScheduler(n, nb=300).run()
            sta = StaticLookaheadScheduler(n, nb=300).run()
            gaps.append(dyn.gflops / sta.gflops)
        assert gaps[0] > gaps[1] > gaps[2]

    def test_30k_efficiency_near_79(self):
        dyn = DynamicScheduler(30000, nb=300).run()
        assert dyn.efficiency == pytest.approx(0.788, abs=0.02)
        assert dyn.gflops == pytest.approx(832, abs=25)

    def test_efficiency_monotone_in_size(self):
        effs = [
            DynamicScheduler(n, nb=300).run().efficiency
            for n in (2000, 5000, 15000, 30000)
        ]
        assert effs == sorted(effs)

    def test_within_12pct_of_dgemm_efficiency(self):
        # Paper: native HPL at 30K is within 12% of native DGEMM (89.4%).
        dyn = DynamicScheduler(30000, nb=300).run()
        assert dyn.efficiency > 0.894 - 0.12


class TestSchedulerMechanics:
    def test_all_tasks_executed(self):
        r = DynamicScheduler(6000, nb=300).run()
        panels = 20
        assert r.tasks_executed == panels + panels * (panels - 1) // 2

    def test_trace_has_all_kinds(self):
        r = DynamicScheduler(6000, nb=300).run()
        kinds = set(r.trace.kinds())
        assert {"dgetrf", "dlaswp", "dtrsm", "dgemm"} <= kinds

    def test_static_trace_has_barrier_and_panel_group(self):
        r = StaticLookaheadScheduler(6000, nb=300).run()
        assert "barrier" in r.trace.kinds()
        assert "panel_group" in r.trace.workers()
        assert r.barriers == 19  # one per stage transition

    def test_master_only_lock_reduces_contention(self):
        slow = DynamicScheduler(5000, nb=250, master_only_lock=False).run()
        fast = DynamicScheduler(5000, nb=250, master_only_lock=True).run()
        assert fast.makespan_s <= slow.makespan_s
        assert slow.lock_mean_wait_s >= fast.lock_mean_wait_s

    def test_custom_superstages_respected(self):
        ss = [SuperStage(0, 10, (30, 30)), SuperStage(10, 20, (60,))]
        r = DynamicScheduler(6000, nb=300, superstages=ss).run()
        assert r.barriers == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicScheduler(0)
        with pytest.raises(ValueError):
            StaticLookaheadScheduler(100, nb=0)
        ws = LUWorkspace(np.zeros((10, 10)) + np.eye(10), 5)
        with pytest.raises(ValueError):
            DynamicScheduler(20, nb=5).run(ws)


class TestNumericExecution:
    def test_dynamic_schedule_computes_correct_lu(self):
        a0 = np.random.default_rng(11).standard_normal((120, 120))
        ws = LUWorkspace(a0.copy(), 30)
        DynamicScheduler(120, nb=30).run(ws)
        ipiv = ws.finalize()
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(ws.a, lu_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_array_equal(ipiv, piv_ref)

    def test_static_schedule_computes_correct_lu(self):
        a0 = np.random.default_rng(12).standard_normal((120, 120))
        ws = LUWorkspace(a0.copy(), 30)
        StaticLookaheadScheduler(120, nb=30).run(ws)
        ipiv = ws.finalize()
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(ws.a, lu_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_array_equal(ipiv, piv_ref)
