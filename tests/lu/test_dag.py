"""The one-array LU DAG: dependencies, look-ahead, super-stage limits."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lu.dag import PanelDAG, Task, TaskType


class TestTaskValidation:
    def test_panel_task_factors_itself(self):
        with pytest.raises(ValueError):
            Task(TaskType.PANEL, 2, 3)

    def test_update_targets_later_panel(self):
        with pytest.raises(ValueError):
            Task(TaskType.UPDATE, 3, 3)

    def test_constructors(self):
        assert Task.panel_task(4) == Task(TaskType.PANEL, 4, 4)
        assert Task.update_task(1, 5) == Task(TaskType.UPDATE, 1, 5)


class TestDAGBasics:
    def test_total_tasks(self):
        assert PanelDAG(1).total_tasks == 1
        assert PanelDAG(6).total_tasks == 6 + 15

    def test_first_task_is_panel_zero(self):
        dag = PanelDAG(4)
        assert dag.available_task() == Task.panel_task(0)

    def test_nothing_else_before_panel_zero_commits(self):
        dag = PanelDAG(4)
        dag.available_task()
        assert dag.available_task() is None

    def test_updates_flow_after_panel(self):
        dag = PanelDAG(3)
        t = dag.available_task()
        dag.complete(t)
        got = {dag.available_task(), dag.available_task()}
        assert got == {Task.update_task(0, 1), Task.update_task(0, 2)}

    def test_lookahead_panel_preferred_over_updates(self):
        # After UPDATE(0,1) commits, PANEL(1) must be offered before the
        # still-pending UPDATE(0,2) — the look-ahead rule.
        dag = PanelDAG(3)
        dag.complete(dag.available_task())  # PANEL(0)
        u01 = dag.available_task()
        assert u01 == Task.update_task(0, 1)
        dag.complete(u01)
        assert dag.available_task() == Task.panel_task(1)

    def test_update_requires_factored_stage_panel(self):
        dag = PanelDAG(3)
        dag.complete(dag.available_task())  # PANEL(0)
        dag.complete(dag.available_task())  # UPDATE(0,1)
        p1 = dag.available_task()
        assert p1 == Task.panel_task(1)
        # UPDATE(1,2) not available: panel 1 in progress, and panel 2
        # still needs UPDATE(0,2) first.
        nxt = dag.available_task()
        assert nxt == Task.update_task(0, 2)

    def test_single_panel_matrix(self):
        dag = PanelDAG(1)
        dag.complete(dag.available_task())
        assert dag.done

    def test_complete_unclaimed_raises(self):
        dag = PanelDAG(2)
        with pytest.raises(ValueError):
            dag.complete(Task.panel_task(0))

    def test_abandon_returns_task(self):
        dag = PanelDAG(2)
        t = dag.available_task()
        dag.abandon(t)
        assert dag.available_task() == t

    def test_abandon_unclaimed_raises(self):
        with pytest.raises(ValueError):
            PanelDAG(2).abandon(Task.panel_task(0))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PanelDAG(0)


class TestMaxStage:
    def test_superstage_boundary_blocks_later_tasks(self):
        dag = PanelDAG(4)
        dag.complete(dag.available_task())  # PANEL(0)
        dag.complete(dag.available_task())  # UPDATE(0,1) (lowest first)
        # With max_stage=1 the ready PANEL(1) is invisible.
        t = dag.available_task(max_stage=1)
        assert t == Task.update_task(0, 2)
        dag.abandon(t)
        assert dag.available_task(max_stage=2) == Task.panel_task(1)

    def test_drain_to_boundary_then_none(self):
        dag = PanelDAG(3)
        while True:
            t = dag.available_task(max_stage=1)
            if t is None:
                break
            dag.complete(t)
        # Everything with stage < 1 done; stage-1 tasks untouched.
        assert dag.factored == [True, False, False]
        assert dag.stage == [1, 1, 1]


class TestFullDrain:
    def _drain(self, n_panels, rng=None):
        dag = PanelDAG(n_panels)
        executed = []
        in_flight = []
        while not dag.done:
            t = dag.available_task()
            while t is not None:
                in_flight.append(t)
                t = dag.available_task()
            assert in_flight, "DAG stalled"
            if rng:
                rng.shuffle(in_flight)
            done = in_flight.pop()
            dag.complete(done)
            executed.append(done)
        return executed

    def test_serial_drain_completes_all(self):
        executed = self._drain(5)
        assert len(executed) == PanelDAG(5).total_tasks

    @given(st.integers(1, 12), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_drain_respects_dependencies(self, n_panels, seed):
        executed = self._drain(n_panels, random.Random(seed))
        assert len(executed) == PanelDAG(n_panels).total_tasks
        seen = set()
        for t in executed:
            if t.type is TaskType.UPDATE:
                # Its stage's panel factored earlier; its panel received
                # all earlier-stage updates first.
                assert Task.panel_task(t.stage) in seen
                for j in range(t.stage):
                    assert Task.update_task(j, t.panel) in seen
            else:
                for j in range(t.stage):
                    assert Task.update_task(j, t.panel) in seen
            seen.add(t)

    def test_commit_out_of_order_raises(self):
        dag = PanelDAG(3)
        dag.complete(dag.available_task())  # PANEL(0)
        t1 = dag.available_task()  # UPDATE(0,1)
        t2 = dag.available_task()  # UPDATE(0,2)
        dag.complete(t2)
        dag.complete(t1)
        # Force an inconsistent manual commit.
        bogus = Task.update_task(0, 1)
        dag.in_progress.add(bogus)
        with pytest.raises(RuntimeError):
            dag.complete(bogus)
