"""Process-backed LU and GEMM: bitwise identity with the serial and
thread paths at every worker count, with descriptors-only pipes."""

import numpy as np
import pytest

from repro.blas.gemm import gemm
from repro.lu.dag import Task
from repro.lu.factorize import blocked_lu, lu_solve, lu_via_dag
from repro.lu.tasks import LUWorkspace
from repro.parallel import ProcessTileExecutor, TileExecutor, make_executor

#: Every pipe message must stay descriptor-sized: a matrix row would
#: already blow through this.
MAX_PIPE_MESSAGE_BYTES = 4096


@pytest.fixture
def rng():
    return np.random.default_rng(23)


class TestStripeGemm:
    @pytest.mark.parametrize("shape", [(500, 300, 260), (64, 50, 17)])
    def test_process_stripes_bitwise_match_serial_and_thread(self, rng, shape):
        m, k, n = shape
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c0 = rng.standard_normal((m, n))
        ref = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0)
        with TileExecutor(4) as tex:
            thread = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0, executor=tex)
        with ProcessTileExecutor(workers=2) as pex:
            proc = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0, executor=pex)
            assert pex.pipe_max_message_bytes < MAX_PIPE_MESSAGE_BYTES
            assert pex.arena.active == 0  # staged operands all released
        assert np.array_equal(ref, thread)
        assert np.array_equal(ref, proc)


class TestProcessLU:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("pack_cache", [False, True])
    def test_blocked_lu_bitwise_across_backends(self, rng, workers, pack_cache):
        a = rng.standard_normal((256, 256))
        lu_ref, ipiv_ref = blocked_lu(a.copy(), nb=48, pack_cache=pack_cache)
        with TileExecutor(4) as tex:
            lu_t, ipiv_t = blocked_lu(
                a.copy(), nb=48, pack_cache=pack_cache, workers=tex
            )
        with ProcessTileExecutor(workers=workers) as pex:
            lu_p, ipiv_p = blocked_lu(
                a.copy(), nb=48, pack_cache=pack_cache, workers=pex
            )
            assert pex.pipe_max_message_bytes < MAX_PIPE_MESSAGE_BYTES
            assert pex.arena.active == 0
        assert np.array_equal(lu_ref, lu_t) and np.array_equal(ipiv_ref, ipiv_t)
        assert np.array_equal(lu_ref, lu_p) and np.array_equal(ipiv_ref, ipiv_p)

    def test_blocked_lu_results_land_in_callers_array(self, rng):
        a = rng.standard_normal((128, 128))
        with ProcessTileExecutor(workers=2) as pex:
            out, _ = blocked_lu(a, nb=32, workers=pex)
        assert out is a  # the in-place contract survives the shm detour

    def test_lu_via_dag_waves_bitwise(self, rng):
        a = rng.standard_normal((192, 192))
        lu_ref, ipiv_ref = lu_via_dag(a.copy(), nb=48)
        with ProcessTileExecutor(workers=2) as pex:
            lu_p, ipiv_p = lu_via_dag(a.copy(), nb=48, workers=pex)
        assert np.array_equal(lu_ref, lu_p)
        assert np.array_equal(ipiv_ref, ipiv_p)

    def test_seeded_n1024_bitwise_and_solvable(self, rng):
        """The issue's acceptance shape: a seeded n=1024 factorization,
        process vs serial, down to the solved x."""
        n, nb = 1024, 128
        a = rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        lu_ref, ipiv_ref = blocked_lu(a.copy(), nb=nb, pack_cache=True)
        with ProcessTileExecutor(workers=2) as pex:
            lu_p, ipiv_p = blocked_lu(a.copy(), nb=nb, pack_cache=True, workers=pex)
        assert np.array_equal(lu_ref, lu_p)
        assert np.array_equal(ipiv_ref, ipiv_p)
        x_ref = lu_solve(lu_ref, ipiv_ref, b)
        x_p = lu_solve(lu_p, ipiv_p, b)
        assert np.array_equal(x_ref, x_p)


class TestSchedulerPathAdoption:
    """LUWorkspace driven task-by-task (the NativeHPL scheduler shape)
    with a process executor fanning each update's GEMM stripes."""

    @staticmethod
    def _drive(ws):
        for i in range(ws.n_panels):
            ws.execute(Task.panel_task(i))
            for p in range(i + 1, ws.n_panels):
                ws.execute(Task.update_task(i, p))
        return ws.finalize()

    def test_stripe_fanout_bitwise_and_identity_restored(self, rng):
        a0 = rng.standard_normal((300, 300))
        ref = a0.copy()
        ipiv_ref = self._drive(LUWorkspace(ref, 48, pack_cache=True))
        mine = a0.copy()
        ex = make_executor("process", workers=2)
        try:
            ws = LUWorkspace(mine, 48, pack_cache=True, executor=ex)
            ipiv = self._drive(ws)
            assert ws.a is mine  # caller's array identity restored
            assert ex.arena.active == 0
        finally:
            ex.close()
        assert np.array_equal(ref, mine)
        assert np.array_equal(ipiv_ref, ipiv)
