"""Blocked LU numerics: reference, DAG orders, and solve."""

import random

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lu.factorize import blocked_lu, lu_solve, lu_via_dag
from repro.lu.tasks import LUWorkspace
from repro.lu.dag import Task


def rand(n, seed):
    return np.random.default_rng(seed).standard_normal((n, n))


class TestBlockedLU:
    def test_matches_scipy(self):
        a0 = rand(96, 0)
        lu, ipiv = blocked_lu(a0.copy(), nb=24)
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_array_equal(ipiv, piv_ref)

    def test_block_size_larger_than_matrix(self):
        a0 = rand(20, 1)
        lu, ipiv = blocked_lu(a0.copy(), nb=64)
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-9, atol=1e-11)

    def test_ragged_last_panel(self):
        a0 = rand(70, 2)  # 70 = 2*32 + 6
        lu, ipiv = blocked_lu(a0.copy(), nb=32)
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_array_equal(ipiv, piv_ref)

    def test_packed_gemm_variant(self):
        a0 = rand(64, 3)
        lu, _ = blocked_lu(a0.copy(), nb=16, use_packed_gemm=True)
        lu_ref, _ = sla.lu_factor(a0)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-9, atol=1e-11)

    @given(st.integers(2, 90), st.integers(4, 48))
    @settings(max_examples=25, deadline=None)
    def test_property_vs_scipy(self, n, nb):
        a0 = rand(n, n * 7 + nb)
        lu, ipiv = blocked_lu(a0.copy(), nb=nb)
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-8, atol=1e-9)
        np.testing.assert_array_equal(ipiv, piv_ref)


class TestDagOrders:
    def test_default_priority_order(self):
        a0 = rand(80, 4)
        lu, ipiv = lu_via_dag(a0.copy(), nb=16)
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_array_equal(ipiv, piv_ref)

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_random_topological_orders_agree(self, seed):
        # Any dependency-respecting order must give the identical result:
        # the correctness foundation of dynamic scheduling.
        rng = random.Random(seed)
        a0 = rand(72, 5)
        lu, ipiv = lu_via_dag(a0.copy(), nb=24, pick=lambda ts: rng.choice(ts))
        lu_ref, piv_ref = sla.lu_factor(a0)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_array_equal(ipiv, piv_ref)


class TestSolve:
    def test_solves_system(self):
        a0 = rand(60, 6)
        b = np.random.default_rng(7).standard_normal(60)
        lu, ipiv = blocked_lu(a0.copy(), nb=16)
        x = lu_solve(lu, ipiv, b)
        np.testing.assert_allclose(a0 @ x, b, rtol=1e-9, atol=1e-9)

    def test_matches_numpy_solve(self):
        a0 = rand(45, 8)
        b = np.random.default_rng(9).standard_normal(45)
        lu, ipiv = blocked_lu(a0.copy(), nb=12)
        np.testing.assert_allclose(
            lu_solve(lu, ipiv, b), np.linalg.solve(a0, b), rtol=1e-8, atol=1e-9
        )

    def test_wrong_rhs_shape(self):
        a0 = rand(10, 10)
        lu, ipiv = blocked_lu(a0.copy(), nb=4)
        with pytest.raises(ValueError):
            lu_solve(lu, ipiv, np.zeros(9))


class TestWorkspace:
    def test_requires_square_float(self):
        with pytest.raises(ValueError):
            LUWorkspace(np.zeros((3, 4)), 2)
        with pytest.raises(ValueError):
            LUWorkspace(np.zeros((4, 4), dtype=int), 2)
        with pytest.raises(ValueError):
            LUWorkspace(np.zeros((4, 4)), 0)

    def test_double_panel_raises(self):
        ws = LUWorkspace(rand(20, 10), 10)
        ws.execute(Task.panel_task(0))
        with pytest.raises(RuntimeError):
            ws.execute(Task.panel_task(0))

    def test_update_before_panel_raises(self):
        ws = LUWorkspace(rand(20, 11), 10)
        with pytest.raises(RuntimeError):
            ws.execute(Task.update_task(0, 1))

    def test_finalize_before_done_raises(self):
        ws = LUWorkspace(rand(20, 12), 10)
        with pytest.raises(RuntimeError):
            ws.finalize()

    def test_double_finalize_raises(self):
        a = rand(20, 13)
        ws = LUWorkspace(a, 20)
        ws.execute(Task.panel_task(0))
        ws.finalize()
        with pytest.raises(RuntimeError):
            ws.finalize()

    def test_panel_geometry(self):
        ws = LUWorkspace(rand(25, 14), 10)
        assert ws.n_panels == 3
        assert ws.panel_width(2) == 5
        assert ws.panel_cols(1) == slice(10, 20)
