"""Parallel LU on the pack-once substrate: exact pack accounting and
bitwise determinism across worker counts."""

import numpy as np
import pytest

from repro.blas.workspace import PackCache
from repro.hpl.matgen import hpl_system
from repro.hpl.residual import hpl_residual
from repro.lu.factorize import blocked_lu, lu_solve, lu_via_dag
from repro.parallel import TileExecutor


def expected_pack_counts(n: int, nb: int) -> tuple:
    """(misses, hits): per stage with t >= 1 trailing panels the L21
    panel packs once (reused t-1 times) and each U block packs once."""
    n_panels = (n + nb - 1) // nb
    trailing = [n_panels - i - 1 for i in range(n_panels)]
    misses = sum(1 + t for t in trailing if t >= 1)
    hits = sum(t - 1 for t in trailing if t >= 1)
    return misses, hits


@pytest.fixture
def rng():
    return np.random.default_rng(23)


def test_exactly_one_pack_per_panel(rng):
    a = rng.standard_normal((160, 160))
    cache = PackCache()
    blocked_lu(a, nb=32, pack_cache=cache)
    want_misses, want_hits = expected_pack_counts(160, 32)
    assert cache.misses == want_misses
    assert cache.hits == want_hits
    assert cache.stale_evictions == 0
    assert len(cache) == 0  # every dead panel was invalidated


def test_pack_counts_deterministic_under_threads(rng):
    """Workers race to the same panel; exactly one packs, the rest hit."""
    a = rng.standard_normal((160, 160))
    counts = {}
    for workers in (1, 4):
        cache = PackCache()
        with TileExecutor(workers) as ex:
            blocked_lu(a.copy(), nb=32, pack_cache=cache, executor=ex, workers=ex)
        counts[workers] = (cache.misses, cache.hits, len(cache))
    assert counts[1] == counts[4] == expected_pack_counts(160, 32) + (0,)


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_blocked_lu_bitwise_identical_across_widths(rng, workers):
    a = rng.standard_normal((160, 160))
    lu_ref, ipiv_ref = blocked_lu(a.copy(), nb=32, pack_cache=True)
    with TileExecutor(workers) as ex:
        lu_w, ipiv_w = blocked_lu(
            a.copy(), nb=32, pack_cache=True, executor=ex, workers=ex
        )
    assert np.array_equal(lu_ref, lu_w)
    assert np.array_equal(ipiv_ref, ipiv_w)


@pytest.mark.parametrize("workers", [2, 8])
def test_lu_via_dag_waves_bitwise_identical(rng, workers):
    a = rng.standard_normal((128, 128))
    lu_ref, ipiv_ref = lu_via_dag(a.copy(), nb=32)
    lu_w, ipiv_w = lu_via_dag(a.copy(), nb=32, workers=workers)
    assert np.array_equal(lu_ref, lu_w)
    assert np.array_equal(ipiv_ref, ipiv_w)


def test_lu_via_dag_pick_and_workers_are_exclusive(rng):
    a = rng.standard_normal((64, 64))
    with pytest.raises(ValueError, match="mutually exclusive"):
        lu_via_dag(a, nb=32, pick=lambda ts: ts[0], workers=2)


def test_substrate_matches_plain_path_numerically(rng):
    """The cached/stripe path is a reordering-free re-tiling: it agrees
    with the plain NumPy update path to rounding."""
    a = rng.standard_normal((160, 160))
    lu_plain, ipiv_plain = blocked_lu(a.copy(), nb=32)
    lu_sub, ipiv_sub = blocked_lu(a.copy(), nb=32, pack_cache=True)
    assert np.array_equal(ipiv_plain, ipiv_sub)
    assert np.allclose(lu_plain, lu_sub, rtol=1e-10, atol=1e-10)


def test_seeded_hpl_n1024_parallel_equals_serial():
    """The acceptance case: a seeded N=1024 system factors to bitwise-
    identical LU factors — and therefore an identical solution and HPL
    residual — serial vs 8-wide."""
    a0, b = hpl_system(1024, seed=42)
    lu_s, ipiv_s = blocked_lu(a0.copy(), nb=128, pack_cache=True)
    with TileExecutor(8) as ex:
        lu_p, ipiv_p = blocked_lu(
            a0.copy(), nb=128, pack_cache=True, executor=ex, workers=ex
        )
    assert np.array_equal(lu_s, lu_p)
    assert np.array_equal(ipiv_s, ipiv_p)
    x_s = lu_solve(lu_s, ipiv_s, b)
    x_p = lu_solve(lu_p, ipiv_p, b)
    assert np.array_equal(x_s, x_p)
    r_s = hpl_residual(a0, x_s, b)
    r_p = hpl_residual(a0, x_p, b)
    assert r_s == r_p
    assert r_s < 16.0  # and the run actually passes HPL's check
