"""The benchmark regression gate: trips on a slowdown, passes clean."""

import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
SCRIPT = REPO / "tools" / "bench_compare.py"

ROWS = [
    {"n": 84000, "tflops": 1.12, "efficiency": 0.798, "paper_tflops": 1.2,
     "result": {"gflops": 1120.0, "time_s": 350.0}},
    {"n": 168000, "tflops": 4.36, "efficiency": 0.776},
]


def run_gate(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, args)],
        capture_output=True,
        text=True,
    )


@pytest.fixture
def dirs(tmp_path):
    base = tmp_path / "baseline"
    cur = tmp_path / "current"
    base.mkdir()
    cur.mkdir()
    (base / "table.json").write_text(json.dumps(ROWS))
    return base, cur


def test_clean_run_exits_zero(dirs):
    base, cur = dirs
    (cur / "table.json").write_text(json.dumps(ROWS))
    proc = run_gate(base, cur)
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_injected_25pct_slowdown_exits_nonzero(dirs):
    base, cur = dirs
    slowed = json.loads(json.dumps(ROWS))
    for row in slowed:
        row["tflops"] *= 0.75
        if "result" in row:
            row["result"]["gflops"] *= 0.75
    (cur / "table.json").write_text(json.dumps(slowed))
    proc = run_gate(base, cur)
    assert proc.returncode == 1
    assert "REGRESSION" in proc.stderr
    assert "tflops" in proc.stderr
    assert "result.gflops" in proc.stderr


def test_drop_within_threshold_passes(dirs):
    base, cur = dirs
    wobbled = json.loads(json.dumps(ROWS))
    for row in wobbled:
        row["tflops"] *= 0.85  # -15%, under the 20% gate
    (cur / "table.json").write_text(json.dumps(wobbled))
    assert run_gate(base, cur).returncode == 0


def test_tighter_threshold_trips(dirs):
    base, cur = dirs
    wobbled = json.loads(json.dumps(ROWS))
    for row in wobbled:
        row["tflops"] *= 0.85
    (cur / "table.json").write_text(json.dumps(wobbled))
    assert run_gate(base, cur, "--threshold", "0.1").returncode == 1


def test_improvements_and_times_are_not_regressions(dirs):
    base, cur = dirs
    changed = json.loads(json.dumps(ROWS))
    changed[0]["tflops"] *= 2.0  # faster: fine
    changed[0]["result"]["time_s"] *= 10.0  # not a gated key
    changed[0]["paper_tflops"] = 0.01  # reference values never gated
    (cur / "table.json").write_text(json.dumps(changed))
    proc = run_gate(base, cur)
    assert proc.returncode == 0, proc.stderr
    assert "improved" in proc.stdout


ALLOC_ROWS = [
    {"bench": "lu.factor", "mode": "pooled", "alloc_temp_bytes": 20000,
     "alloc_bytes_per_stage": 5000, "pool_reduction_efficiency": 0.88},
    {"bench": "lu.solve", "mode": "pooled", "alloc_temp_bytes": 23000},
]


@pytest.fixture
def alloc_dirs(tmp_path):
    base = tmp_path / "baseline"
    cur = tmp_path / "current"
    base.mkdir()
    cur.mkdir()
    (base / "alloc.json").write_text(json.dumps(ALLOC_ROWS))
    return base, cur


def test_alloc_bytes_increase_is_a_regression(alloc_dirs):
    base, cur = alloc_dirs
    grown = json.loads(json.dumps(ALLOC_ROWS))
    grown[0]["alloc_temp_bytes"] = int(grown[0]["alloc_temp_bytes"] * 1.5)
    (cur / "alloc.json").write_text(json.dumps(grown))
    proc = run_gate(base, cur)
    assert proc.returncode == 1
    assert "alloc_temp_bytes" in proc.stderr
    assert "lower is better" in proc.stderr


def test_alloc_bytes_drop_is_an_improvement(alloc_dirs):
    base, cur = alloc_dirs
    shrunk = json.loads(json.dumps(ALLOC_ROWS))
    for row in shrunk:
        row["alloc_temp_bytes"] = int(row["alloc_temp_bytes"] * 0.5)
    (cur / "alloc.json").write_text(json.dumps(shrunk))
    proc = run_gate(base, cur)
    assert proc.returncode == 0, proc.stderr
    assert "improved" in proc.stdout


def test_alloc_increase_within_threshold_passes(alloc_dirs):
    base, cur = alloc_dirs
    wobbled = json.loads(json.dumps(ALLOC_ROWS))
    wobbled[1]["alloc_temp_bytes"] = int(
        wobbled[1]["alloc_temp_bytes"] * 1.15
    )  # +15%, under the 20% gate
    (cur / "alloc.json").write_text(json.dumps(wobbled))
    assert run_gate(base, cur).returncode == 0


def test_reduction_efficiency_drop_is_a_regression(alloc_dirs):
    """The efficiency figure stays higher-is-better even in alloc rows."""
    base, cur = alloc_dirs
    worse = json.loads(json.dumps(ALLOC_ROWS))
    worse[0]["pool_reduction_efficiency"] = 0.4
    (cur / "alloc.json").write_text(json.dumps(worse))
    proc = run_gate(base, cur)
    assert proc.returncode == 1
    assert "pool_reduction_efficiency" in proc.stderr


LATENCY_ROWS = [
    {"bench": "service", "mode": "serving",
     "submit_p99_latency_s": 0.004, "queue_wait_p50_s": 0.001,
     "cache_hit_speedup": 500.0, "requests_per_s": 2000.0,
     "cold_run_s": 0.08},
]


@pytest.fixture
def latency_dirs(tmp_path):
    base = tmp_path / "baseline"
    cur = tmp_path / "current"
    base.mkdir()
    cur.mkdir()
    (base / "service.json").write_text(json.dumps(LATENCY_ROWS))
    return base, cur


def test_latency_increase_is_a_regression(latency_dirs):
    base, cur = latency_dirs
    slower = json.loads(json.dumps(LATENCY_ROWS))
    slower[0]["submit_p99_latency_s"] *= 2.0
    (cur / "service.json").write_text(json.dumps(slower))
    proc = run_gate(base, cur)
    assert proc.returncode == 1
    assert "submit_p99_latency_s" in proc.stderr
    assert "lower is better" in proc.stderr


def test_queue_wait_increase_is_a_regression(latency_dirs):
    base, cur = latency_dirs
    slower = json.loads(json.dumps(LATENCY_ROWS))
    slower[0]["queue_wait_p50_s"] *= 3.0
    (cur / "service.json").write_text(json.dumps(slower))
    proc = run_gate(base, cur)
    assert proc.returncode == 1
    assert "queue_wait_p50_s" in proc.stderr


def test_latency_drop_is_an_improvement(latency_dirs):
    base, cur = latency_dirs
    faster = json.loads(json.dumps(LATENCY_ROWS))
    faster[0]["submit_p99_latency_s"] *= 0.25
    faster[0]["queue_wait_p50_s"] *= 0.25
    (cur / "service.json").write_text(json.dumps(faster))
    proc = run_gate(base, cur)
    assert proc.returncode == 0, proc.stderr
    assert "improved" in proc.stdout


def test_speedup_and_throughput_drop_are_regressions(latency_dirs):
    """cache_hit_speedup / requests_per_s gate higher-is-better."""
    base, cur = latency_dirs
    worse = json.loads(json.dumps(LATENCY_ROWS))
    worse[0]["cache_hit_speedup"] = 100.0
    worse[0]["requests_per_s"] = 400.0
    (cur / "service.json").write_text(json.dumps(worse))
    proc = run_gate(base, cur)
    assert proc.returncode == 1
    assert "cache_hit_speedup" in proc.stderr
    assert "requests_per_s" in proc.stderr


def test_wall_clock_times_in_latency_rows_not_gated(latency_dirs):
    base, cur = latency_dirs
    changed = json.loads(json.dumps(LATENCY_ROWS))
    changed[0]["cold_run_s"] *= 50.0  # plain wall clock: never gated
    (cur / "service.json").write_text(json.dumps(changed))
    assert run_gate(base, cur).returncode == 0


def test_missing_current_file_is_a_note_not_a_failure(dirs):
    base, cur = dirs
    proc = run_gate(base, cur)
    assert proc.returncode == 0
    assert "missing from current" in proc.stdout


def test_single_file_arguments(dirs):
    base, cur = dirs
    (cur / "table.json").write_text(json.dumps(ROWS))
    proc = run_gate(base / "table.json", cur / "table.json")
    assert proc.returncode == 0


def test_missing_baseline_path_errors(tmp_path):
    proc = run_gate(tmp_path / "nope", tmp_path / "nope2")
    assert proc.returncode not in (0, 1) or "FileNotFoundError" in proc.stderr


def test_committed_baseline_gates_real_artifacts():
    """The acceptance wiring: the committed baseline compares clean
    against the repo's own current artifacts."""
    baseline = REPO / "benchmarks" / "out" / "baseline"
    assert baseline.is_dir() and list(baseline.glob("*.json"))
    proc = run_gate(baseline, REPO / "benchmarks" / "out")
    assert proc.returncode == 0, proc.stdout + proc.stderr
