"""ProcessTileExecutor: descriptor dispatch, the zero-payload pipe
contract, error propagation, and the TileExecutor-compatible surface."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.parallel import (
    ProcessTileExecutor,
    TileExecutor,
    is_process_executor,
    make_executor,
    shm_task,
)


@shm_task("test.square")
def _task_square(ctx, *, x):
    return x * x


@shm_task("test.write_slice")
def _task_write_slice(ctx, *, ref, lo, hi, value):
    ctx.resolve(ref)[lo:hi] = value
    return None


@shm_task("test.fail")
def _task_fail(ctx, *, message):
    raise ValueError(message)


@shm_task("test.remember")
def _task_remember(ctx, *, value):
    ctx.state["remembered"] = value
    return None


@shm_task("test.recall")
def _task_recall(ctx):
    return ctx.state.get("remembered")


@pytest.fixture
def ex():
    executor = ProcessTileExecutor(workers=2)
    yield executor
    executor.close()


class TestDispatch:
    def test_results_in_item_order(self, ex):
        items = [{"x": i} for i in range(23)]
        assert ex.run_tasks("test.square", items) == [i * i for i in range(23)]

    def test_workers_write_disjoint_slices_of_shared_memory(self, ex):
        buf = ex.arena.checkout((64,), np.float64)
        buf[:] = 0.0
        ref = ex.arena.ref_of(buf)
        items = [
            {"lo": i * 8, "hi": (i + 1) * 8, "value": float(i + 1)}
            for i in range(8)
        ]
        ex.run_tasks("test.write_slice", items, common={"ref": ref})
        expect = np.repeat(np.arange(1.0, 9.0), 8)
        assert np.array_equal(buf, expect)
        ex.arena.release(buf)

    def test_setup_broadcasts_to_every_worker(self, ex):
        ex.setup("test.remember", value=17)
        # Every shard (any worker) must see the state.
        assert ex.run_tasks("test.recall", [{} for _ in range(8)]) == [17] * 8

    def test_worker_traceback_propagates(self, ex):
        with pytest.raises(RuntimeError, match="kaboom"):
            ex.run_tasks("test.fail", [{"message": "kaboom"}])

    def test_map_runs_inline(self, ex):
        assert ex.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert ex.inline_maps == 1


class TestPipeContract:
    def test_array_payload_rejected(self, ex):
        with pytest.raises(TypeError, match="must not cross"):
            ex.run_tasks("test.square", [{"x": np.zeros(4)}])
        with pytest.raises(TypeError, match="must not cross"):
            ex.run_tasks("test.square", [{"x": 1}], common={"c": np.zeros(4)})
        with pytest.raises(TypeError, match="must not cross"):
            ex.setup("test.remember", value=np.zeros(4))

    def test_nested_array_payload_rejected(self, ex):
        with pytest.raises(TypeError, match="must not cross"):
            ex.run_tasks("test.square", [{"x": {"deep": [np.zeros(2)]}}])

    def test_pickle_size_probe_counts_messages(self, ex):
        ex.run_tasks("test.square", [{"x": i} for i in range(10)])
        assert ex.pipe_messages == 2  # one batch per engaged worker
        assert ex.pipe_task_bytes > 0
        assert 0 < ex.pipe_max_message_bytes < 4096  # descriptors, not data


class TestLifecycle:
    def test_close_is_idempotent_and_final(self):
        ex = ProcessTileExecutor(workers=1)
        ex.close()
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.run_tasks("test.square", [{"x": 1}])

    def test_is_process_executor_predicate(self, ex):
        assert is_process_executor(ex)
        assert not is_process_executor(TileExecutor(1))
        assert not is_process_executor(None)

    def test_make_executor_backends(self):
        t = make_executor("thread", workers=2)
        assert isinstance(t, TileExecutor)
        t.close()
        p = make_executor("process", workers=1)
        assert isinstance(p, ProcessTileExecutor)
        p.close()
        with pytest.raises(ValueError):
            make_executor("carrier-pigeon")


class TestObservability:
    def test_publish_backend_gauge_and_pipe_counters(self, ex):
        ex.run_tasks("test.square", [{"x": 1}, {"x": 2}])
        m = MetricsRegistry()
        ex.publish(m)
        flat = dict(m.flatten())
        assert flat["parallel.pool.backend.process"] == 1
        assert flat["parallel.pipe.messages"] == ex.pipe_messages
        assert flat["parallel.pipe.max_message_bytes"] == ex.pipe_max_message_bytes
        assert "parallel.shm_arena.checkouts" in flat

    def test_thread_publish_backend_gauge(self):
        with TileExecutor(2) as t:
            t.map(lambda x: x, [1, 2])
            m = MetricsRegistry()
            t.publish(m)
        assert dict(m.flatten())["parallel.pool.backend.thread"] == 1

    def test_utilization_zero_wall_regression(self):
        # publish() on a pool that never ran must not divide by zero.
        with TileExecutor(2) as t:
            assert t.utilization == 0.0
            t.publish(MetricsRegistry())
        p = ProcessTileExecutor(workers=1)
        try:
            assert p.utilization == 0.0
            p.publish(MetricsRegistry())
        finally:
            p.close()
