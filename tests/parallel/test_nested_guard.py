"""The nested-process-pool guard in make_executor.

Campaign and service pool workers are already child processes; a spec
reaching them with ``executor="process"`` must not fork grandchild
pools (core oversubscription, multiplied spawn cost, orphaned process
trees when the middle layer dies). ``make_executor`` downgrades to the
thread executor with a warning instead.
"""

import warnings
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.parallel.executor import TileExecutor, make_executor


def _probe_in_child(_):
    """Runs inside a real pool worker: what does make_executor build?"""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ex = make_executor("process", workers=2)
        try:
            return (
                type(ex).__name__,
                ex.backend,
                [str(w.message) for w in caught],
            )
        finally:
            ex.close()


class TestNestedPoolGuard:
    def test_parent_process_still_gets_a_process_executor(self):
        ex = make_executor("process", workers=2)
        try:
            assert ex.backend == "process"
            assert type(ex).__name__ == "ProcessTileExecutor"
        finally:
            ex.close()

    def test_child_process_downgrades_to_threads_with_warning(self):
        with ProcessPoolExecutor(max_workers=1) as pool:
            name, backend, messages = pool.submit(_probe_in_child, 0).result(
                timeout=120
            )
        assert name == "TileExecutor"
        assert backend == "thread"
        assert any("nesting pools" in m for m in messages)

    def test_guard_trips_on_parent_process_probe(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "parent_process", lambda: object()
        )
        with pytest.warns(RuntimeWarning, match="child process"):
            ex = make_executor("process", workers=2)
        assert isinstance(ex, TileExecutor)
        ex.close()

    def test_thread_backend_is_never_warned_about(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "parent_process", lambda: object()
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ex = make_executor("thread", workers=2)
        assert isinstance(ex, TileExecutor)
        ex.close()

    def test_service_worker_spec_downgrades_inside_pool(self):
        """End to end: a numeric spec asking for process tiles executes
        fine from inside a pool worker (the path service workers take)."""
        from repro.api import run_to_artifact

        with ProcessPoolExecutor(max_workers=1) as pool:
            artifact = pool.submit(
                run_to_artifact,
                {"kind": "native", "n": 256, "nb": 64, "numeric": True,
                 "executor": "process", "workers": 2},
            ).result(timeout=120)
        assert artifact["status"] == "ok"
        assert artifact["result"]["passed"] is True
