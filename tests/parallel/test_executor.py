"""TileExecutor: inline degradation, no nested pools, determinism,
counters."""

import threading

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.parallel import TileExecutor, as_executor, default_workers
from repro.parallel.executor import in_worker, scratch_buffer


def test_map_preserves_item_order():
    with TileExecutor(4) as ex:
        assert ex.map(lambda x: x * x, range(32)) == [x * x for x in range(32)]


def test_inline_when_single_worker():
    ex = TileExecutor(1)
    assert ex.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
    assert ex.inline_maps == 1
    assert ex._pool is None  # no pool was ever built


def test_inline_when_single_item():
    with TileExecutor(4) as ex:
        ex.map(lambda x: x, [42])
        assert ex.inline_maps == 1
        assert ex._pool is None


def test_no_nested_pools():
    """A map issued from inside a worker runs inline, on that worker."""
    outer = TileExecutor(2)
    inner = TileExecutor(2)
    seen = {}

    def inner_fn(i):
        seen[i] = (threading.current_thread().name, in_worker())
        return i

    def outer_fn(i):
        assert in_worker()
        inner.map(inner_fn, [10 * i, 10 * i + 1])
        return threading.current_thread().name

    try:
        outer_names = outer.map(outer_fn, [0, 1, 2, 3])
        # Inner items ran on the outer pool's threads, flagged as workers.
        for i, (name, flagged) in seen.items():
            assert flagged
            assert name in outer_names
        assert inner.inline_maps == inner.maps == 4
        assert inner._pool is None
    finally:
        outer.close()
        inner.close()
    assert not in_worker()  # the flag never leaks to the caller thread


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_disjoint_writes_are_bitwise_deterministic(workers):
    rng = np.random.default_rng(3)
    a = rng.standard_normal((64, 64))
    b = rng.standard_normal((64, 64))
    ref = np.empty_like(a)
    for r in range(0, 64, 8):
        ref[r : r + 8] = a[r : r + 8] @ b

    out = np.empty_like(a)

    def stripe(r):
        out[r : r + 8] = a[r : r + 8] @ b

    with TileExecutor(workers) as ex:
        ex.map(stripe, range(0, 64, 8))
    assert np.array_equal(out, ref)


def test_exceptions_propagate():
    def boom(i):
        if i == 3:
            raise RuntimeError("tile 3")
        return i

    with TileExecutor(2) as ex:
        with pytest.raises(RuntimeError, match="tile 3"):
            ex.map(boom, range(8))


def test_close_is_idempotent_and_pool_recreates():
    ex = TileExecutor(2)
    ex.map(lambda x: x, range(8))
    assert ex._pool is not None
    ex.close()
    ex.close()
    assert ex._pool is None
    assert ex.map(lambda x: x, range(8)) == list(range(8))
    ex.close()


def test_counters_and_publish():
    with TileExecutor(2) as ex:
        ex.map(lambda x: x, range(8))
        ex.map(lambda x: x, [1])  # inline
        metrics = MetricsRegistry()
        ex.publish(metrics)
    flat = dict(metrics.flatten())
    assert flat["parallel.tasks"] == 9
    assert flat["parallel.maps"] == 2
    assert flat["parallel.maps_inline"] == 1
    assert flat["parallel.pool.workers"] == 2
    assert 0.0 <= flat["parallel.pool.utilization"] <= 1.0
    ex.publish(None)  # tolerated no-op


def test_as_executor_coercions():
    assert as_executor(None) is None
    ex = as_executor(3)
    assert isinstance(ex, TileExecutor) and ex.workers == 3
    ex.close()
    same = TileExecutor(1)
    assert as_executor(same) is same
    with pytest.raises(TypeError):
        as_executor("four")


def test_invalid_worker_counts():
    with pytest.raises(ValueError):
        TileExecutor(0)
    with pytest.raises(ValueError):
        TileExecutor(-2)


def test_default_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert default_workers() == 5
    assert TileExecutor().workers == 5
    monkeypatch.setenv("REPRO_WORKERS", "zero")
    with pytest.raises(ValueError):
        default_workers()
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.raises(ValueError):
        default_workers()
    monkeypatch.delenv("REPRO_WORKERS")
    assert default_workers() >= 1


def test_scratch_buffer_reuse():
    b1 = scratch_buffer((4, 8), np.float64)
    b2 = scratch_buffer((4, 8), np.float64)
    assert b1 is b2
    assert scratch_buffer((4, 8), np.float32) is not b1
    assert b1.shape == (4, 8)
