"""SharedArena: the BufferPool lease protocol over OS shared memory,
plus the ArrayRef descriptor round-trip the process executor rides on."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.parallel import ArrayRef, SharedArena, SharedArenaError


@pytest.fixture
def arena():
    a = SharedArena(segment_bytes=1 << 16)
    yield a
    a.destroy()


class TestLeaseProtocol:
    def test_checkout_geometry_and_alignment(self, arena):
        buf = arena.checkout((7, 5), np.float64, key="t")
        assert buf.shape == (7, 5) and buf.dtype == np.float64
        assert buf.flags["C_CONTIGUOUS"]
        assert buf.ctypes.data % 64 == 0  # cache-line aligned
        arena.release(buf)

    def test_release_returns_block_for_reuse(self, arena):
        a = arena.checkout((100,), np.float64)
        arena.release(a)
        b = arena.checkout((80,), np.float64)
        assert arena.reuses == 1
        arena.release(b)

    def test_double_release_raises(self, arena):
        buf = arena.checkout((4,), np.float64)
        arena.release(buf)
        with pytest.raises(SharedArenaError, match="not leased"):
            arena.release(buf)

    def test_foreign_buffer_raises(self, arena):
        with pytest.raises(SharedArenaError, match="not leased"):
            arena.release(np.zeros(4))

    def test_active_exposes_leaks(self, arena):
        a = arena.checkout((4,), np.float64, key="leak.me")
        b = arena.checkout((4,), np.float64, key="leak.me2")
        assert arena.active == 2
        assert arena.active_keys() == ["leak.me", "leak.me2"]
        arena.release(a)
        arena.release(b)
        assert arena.active == 0

    def test_rent_releases_on_exception(self, arena):
        with pytest.raises(RuntimeError):
            with arena.rent((4,), np.float64):
                raise RuntimeError("boom")
        assert arena.active == 0

    def test_large_request_gets_own_segment(self, arena):
        small = arena.checkout((8,), np.float64)
        big = arena.checkout((1 << 15,), np.float64)  # > segment_bytes
        assert arena.segments_created == 2
        arena.release(small)
        arena.release(big)

    def test_checkout_after_destroy_raises(self):
        arena = SharedArena(segment_bytes=1 << 16)
        arena.checkout((4,), np.float64)
        arena.destroy()
        arena.destroy()  # idempotent
        with pytest.raises(SharedArenaError, match="after destroy"):
            arena.checkout((4,), np.float64)


class TestDescriptors:
    def test_ref_of_resolve_round_trip(self, arena):
        buf = arena.checkout((6, 4), np.float64)
        buf[:] = np.arange(24.0).reshape(6, 4)
        ref = arena.ref_of(buf)
        assert isinstance(ref, ArrayRef)
        view = arena.resolve(ref)
        assert np.array_equal(view, buf)
        view[0, 0] = -1.0  # same bytes, not a copy
        assert buf[0, 0] == -1.0
        arena.release(buf)

    def test_ref_of_strided_subview(self, arena):
        buf = arena.checkout((8, 8), np.float64)
        buf[:] = np.arange(64.0).reshape(8, 8)
        sub = buf[2:7, 1::2]
        ref = arena.ref_of(sub)
        assert ref is not None
        assert np.array_equal(arena.resolve(ref), sub)
        arena.release(buf)

    def test_ref_of_foreign_array_is_none(self, arena):
        assert arena.ref_of(np.zeros((3, 3))) is None

    def test_adopt_copies_in(self, arena):
        src = np.arange(12.0).reshape(3, 4)
        view = arena.adopt(src, key="adopted")
        assert np.array_equal(view, src)
        assert arena.ref_of(view) is not None
        arena.release(view)


class TestSubstrateFactories:
    def test_buffer_pool_blocks_are_ref_addressable(self, arena):
        pool = arena.buffer_pool()
        buf = pool.checkout((16, 16), np.float64, key="x")
        assert arena.ref_of(buf) is not None
        pool.release(buf)
        pool.clear()
        assert arena.active == 0

    def test_pack_cache_panels_live_in_arena(self, arena):
        cache = arena.pack_cache()
        rng = np.random.default_rng(0)
        pa = cache.pack_a(rng.standard_normal((60, 40)), key="a")
        assert arena.ref_of(pa.data) is not None
        cache.invalidate()
        assert arena.active == 0

    def test_publish_counters(self, arena):
        buf = arena.checkout((4,), np.float64)
        arena.release(buf)
        m = MetricsRegistry()
        arena.publish(m)
        flat = dict(m.flatten())
        assert flat["parallel.shm_arena.checkouts"] == 1
        assert flat["parallel.shm_arena.releases"] == 1
        assert flat["parallel.shm_arena.active"] == 0
