"""Service end-to-end: cache hits, single-flight, shedding, crashes.

All tests drive the asyncio engine through ``asyncio.run`` from plain
sync tests (no async test plugin needed) and use thread workers —
process isolation is covered separately by the CLI/server smoke and the
campaign pool tests; here instant startup and monkeypatchable dispatch
matter more.
"""

import asyncio
import json
import threading
from concurrent.futures import BrokenExecutor

import pytest

from repro.service import ResultCache, Service
from repro.service import core as service_core
from repro.spec import RunSpec

SPEC = RunSpec(kind="hybrid", n=12000)


def svc(**kw):
    kw.setdefault("use_processes", False)
    kw.setdefault("workers", 2)
    return Service(**kw)


class BlockedPool:
    """Monkeypatch plumbing: stall the first dispatch until released."""

    def __init__(self, monkeypatch, fail=None):
        self.sizes = []
        self.entered = threading.Event()
        self.release = threading.Event()
        self.fail = fail
        real = service_core.execute_batch

        def patched(spec_dicts):
            self.sizes.append(len(spec_dicts))
            if len(self.sizes) == 1:
                self.entered.set()
                self.release.wait(30)
                if self.fail is not None:
                    raise self.fail
            return real(spec_dicts)

        monkeypatch.setattr(service_core, "execute_batch", patched)

    async def wait_entered(self):
        await asyncio.get_running_loop().run_in_executor(
            None, self.entered.wait
        )


class TestCacheFastPath:
    def test_second_submit_is_served_cached_and_byte_identical(self):
        async def main():
            async with svc() as s:
                first = await s.submit(SPEC)
                second = await s.submit(SPEC)
                return first, second, s.cache.stats()

        first, second, stats = asyncio.run(main())
        assert first["status"] == "ok" and first["cached"] is False
        assert second["cached"] is True
        assert stats["stores"] == 1 and stats["hits_memory"] == 1
        # The acceptance bar: spec_hash and the numeric result payload
        # of a cached serve are byte-identical to the fresh run's.
        assert second["spec_hash"] == first["spec_hash"]
        assert (json.dumps(second["result"], sort_keys=True)
                == json.dumps(first["result"], sort_keys=True))

    def test_cache_hit_never_touches_a_worker(self):
        async def main():
            async with svc() as s:
                await s.submit(SPEC)
                dispatched = s.metrics.counter("service.dispatched_jobs").value
                await s.submit(SPEC)
                await s.submit(SPEC)
                return dispatched, s.metrics.counter(
                    "service.dispatched_jobs").value

        before, after = asyncio.run(main())
        assert before == 1 and after == 1

    def test_dict_specs_are_coerced(self):
        async def main():
            async with svc() as s:
                return await s.submit({"kind": "hybrid", "n": 12000})

        assert asyncio.run(main())["status"] == "ok"

    def test_non_spec_rejected_with_type_error(self):
        async def main():
            async with svc() as s:
                await s.submit(42)

        with pytest.raises(TypeError):
            asyncio.run(main())

    def test_prewarmed_disk_cache_serves_without_execution(self, tmp_path):
        async def warm():
            async with svc(cache_dir=tmp_path) as s:
                await s.submit(SPEC)

        async def serve():
            async with svc(cache_dir=tmp_path) as s:
                art = await s.submit(SPEC)
                return art, s.cache.stats()

        asyncio.run(warm())
        art, stats = asyncio.run(serve())
        assert art["cached"] is True
        assert stats["hits_disk"] == 1 and stats["stores"] == 0


class TestSingleFlight:
    def test_16_way_duplicate_burst_executes_exactly_once(self):
        async def main():
            async with svc() as s:
                results = await asyncio.gather(
                    *(s.submit(SPEC) for _ in range(16))
                )
                return results, s

        results, s = asyncio.run(main())
        assert all(r["status"] == "ok" for r in results)
        assert {r["spec_hash"] for r in results} == {SPEC.canonical_hash()}
        # Exactly one execution: one store, one dispatched job.
        assert s.cache.stats()["stores"] == 1
        assert s.metrics.counter("service.dispatched_jobs").value == 1
        followers = [r for r in results if r.get("coalesced")]
        assert len(followers) == 15 and s.coalesced == 15

    def test_distinct_specs_are_not_coalesced(self):
        async def main():
            async with svc() as s:
                a, b = await asyncio.gather(
                    s.submit(RunSpec(kind="hybrid", n=6000)),
                    s.submit(RunSpec(kind="hybrid", n=12000)),
                )
                return a, b, s.coalesced

        a, b, coalesced = asyncio.run(main())
        assert a["spec_hash"] != b["spec_hash"]
        assert coalesced == 0


class TestAdmission:
    def test_overload_is_shed_with_an_explicit_rejected_artifact(
        self, monkeypatch
    ):
        blocked = BlockedPool(monkeypatch)

        async def main():
            async with svc(workers=1, max_queue=2, batch_max=1) as s:
                first = asyncio.ensure_future(
                    s.submit(RunSpec(kind="hybrid", n=6000))
                )
                await blocked.wait_entered()
                queued = [
                    asyncio.ensure_future(
                        s.submit(RunSpec(kind="hybrid", n=12000 + 1200 * i))
                    )
                    for i in range(2)
                ]
                await asyncio.sleep(0.05)  # let the queue fill
                shed = await s.submit(RunSpec(kind="hybrid", n=48000))
                blocked.release.set()
                served = await asyncio.gather(first, *queued)
                return shed, served, s.admission.stats()

        shed, served, stats = asyncio.run(main())
        assert shed["status"] == "rejected"
        assert "admission queue full" in shed["error"]
        assert shed["cached"] is False
        assert all(r["status"] == "ok" for r in served)
        assert stats["rejected"] == 1

    def test_close_fails_stranded_jobs_instead_of_hanging(self, monkeypatch):
        blocked = BlockedPool(monkeypatch)

        async def main():
            s = svc(workers=1, batch_max=1)
            await s.start()
            running = asyncio.ensure_future(
                s.submit(RunSpec(kind="hybrid", n=6000))
            )
            await blocked.wait_entered()
            queued = asyncio.ensure_future(
                s.submit(RunSpec(kind="hybrid", n=12000))
            )
            await asyncio.sleep(0.05)
            await s.close()
            blocked.release.set()
            return await asyncio.gather(running, queued)

        running, queued = asyncio.run(main())
        assert running["status"] == "error"
        assert queued["status"] == "error"
        assert "service closed" in queued["error"]


class TestBatching:
    def test_queued_compatible_jobs_coalesce_into_one_dispatch(
        self, monkeypatch
    ):
        blocked = BlockedPool(monkeypatch)

        async def main():
            async with svc(workers=1, batch_max=8) as s:
                first = asyncio.ensure_future(
                    s.submit(RunSpec(kind="native", n=2000))
                )
                await blocked.wait_entered()
                followers = [
                    asyncio.ensure_future(
                        s.submit(RunSpec(kind="hybrid", n=6000 + 1200 * i))
                    )
                    for i in range(6)
                ]
                await asyncio.sleep(0.05)
                blocked.release.set()
                results = await asyncio.gather(first, *followers)
                return results, blocked.sizes, s.batcher.stats()

        results, sizes, stats = asyncio.run(main())
        assert all(r["status"] == "ok" for r in results)
        assert sizes == [1, 6]  # six compatible jobs, one round-trip
        assert stats["coalesced"] == 5 and stats["largest"] == 6


class TestCrashCapture:
    def test_broken_pool_fails_only_its_batch_and_rebuilds(self, monkeypatch):
        blocked = BlockedPool(
            monkeypatch, fail=BrokenExecutor("worker died")
        )

        async def main():
            async with svc(workers=1, batch_max=1) as s:
                doomed = asyncio.ensure_future(
                    s.submit(RunSpec(kind="hybrid", n=6000))
                )
                await blocked.wait_entered()
                survivor = asyncio.ensure_future(
                    s.submit(RunSpec(kind="hybrid", n=12000))
                )
                blocked.release.set()
                return await asyncio.gather(doomed, survivor), s

        (doomed, survivor), s = asyncio.run(main())
        assert doomed["status"] == "crash"
        assert "worker process died" in doomed["error"]
        assert survivor["status"] == "ok"  # the service stayed up
        assert s.pool_rebuilds == 1
        assert s.metrics.counter("service.pool.crashes").value == 1

    def test_crash_artifacts_are_not_served_from_cache(self, monkeypatch):
        blocked = BlockedPool(
            monkeypatch, fail=BrokenExecutor("worker died")
        )
        blocked.release.set()  # fail immediately, no staging needed

        async def main():
            async with svc(workers=1) as s:
                first = await s.submit(SPEC)
                second = await s.submit(SPEC)
                return first, second

        first, second = asyncio.run(main())
        assert first["status"] == "crash"
        # The retry executed (the patched pool only fails once).
        assert second["status"] == "ok" and second["cached"] is False


class TestEventsAndStats:
    def test_progress_events_stream_in_order(self):
        events = []

        async def main():
            async with svc() as s:
                await s.submit(SPEC, on_event=lambda e: events.append(e))
                await s.submit(SPEC, on_event=lambda e: events.append(e))

        asyncio.run(main())
        kinds = [e["event"] for e in events]
        assert kinds == ["queued", "running", "done", "cached"]
        assert all(e["spec_hash"] == SPEC.canonical_hash() for e in events)

    def test_listener_errors_never_fail_the_job(self):
        def bomb(_event):
            raise RuntimeError("listener bug")

        async def main():
            async with svc() as s:
                return await s.submit(SPEC, on_event=bomb)

        assert asyncio.run(main())["status"] == "ok"

    def test_stats_snapshot_shape(self):
        async def main():
            async with svc() as s:
                await s.submit(SPEC)
                await s.submit(SPEC)
                return s.stats()

        stats = asyncio.run(main())
        assert stats["requests"] == 2
        assert stats["cache"]["stores"] == 1
        assert stats["pool"]["backend"] == "thread"
        assert stats["latency"]["count"] == 2
        assert stats["queue_wait"]["count"] == 1
        assert stats["latency"]["p99"] >= stats["latency"]["p50"] >= 0.0

    def test_tenants_flow_into_admission_stats(self):
        async def main():
            async with svc() as s:
                await s.submit(RunSpec(kind="hybrid", n=6000), tenant="alice")
                await s.submit(RunSpec(kind="hybrid", n=12000), tenant="bob")
                return s.admission.stats()

        stats = asyncio.run(main())
        assert stats["accepted"] == 2 and stats["served"] == 2


class TestCampaignIntegration:
    """The acceptance criterion, both directions: service and campaign
    execute through one cache, so neither re-runs the other's work."""

    def _campaign(self):
        from repro.campaign.spec import CampaignSpec

        return CampaignSpec(
            name="warm",
            base={"kind": "hybrid", "n": 12000},
            axes={"nb": [600, 1200]},
            workers=0,
        )

    def test_campaign_over_warm_service_cache_executes_zero_runs(
        self, tmp_path
    ):
        from repro.campaign.runner import run_campaign

        campaign = self._campaign()
        cache = ResultCache(disk_dir=tmp_path / "runs")

        async def warm():
            async with svc(cache=cache) as s:
                for spec in campaign.expand():
                    await s.submit(spec)

        asyncio.run(warm())
        report = run_campaign(campaign, tmp_path, cache=cache)
        assert report.totals["executed"] == 0
        assert report.totals["cached"] == report.totals["runs"] == 2
        assert report.totals["ok"] == 2

    def test_service_over_warm_campaign_artifacts_serves_cached(
        self, tmp_path
    ):
        from repro.campaign.runner import run_campaign

        campaign = self._campaign()
        report = run_campaign(campaign, tmp_path)
        assert report.totals["executed"] == 2

        async def serve():
            async with svc(cache_dir=tmp_path / "runs") as s:
                arts = [await s.submit(spec) for spec in campaign.expand()]
                return arts, s.cache.stats()

        arts, stats = asyncio.run(serve())
        assert all(a["cached"] for a in arts)
        assert stats["stores"] == 0 and stats["hits_disk"] == 2

    def test_shared_cache_artifacts_match_campaign_format(self, tmp_path):
        from repro.campaign.runner import run_campaign

        campaign = self._campaign()
        cache = ResultCache(disk_dir=tmp_path / "runs")

        async def warm():
            async with svc(cache=cache) as s:
                for spec in campaign.expand():
                    await s.submit(spec)

        asyncio.run(warm())
        service_docs = {
            p.name: p.read_text()
            for p in sorted((tmp_path / "runs").glob("*.json"))
        }
        run_campaign(self._campaign(), tmp_path / "fresh")
        campaign_docs = {
            p.name: p.read_text()
            for p in sorted((tmp_path / "fresh" / "runs").glob("*.json"))
        }
        assert set(service_docs) == set(campaign_docs)
        for name in service_docs:
            ours = json.loads(service_docs[name])
            theirs = json.loads(campaign_docs[name])
            # elapsed_s is wall clock; everything else is byte-identical.
            ours.pop("elapsed_s"), theirs.pop("elapsed_s")
            assert ours == theirs


class TestElasticPool:
    def test_pool_grows_under_depth_and_shrinks_when_idle(self):
        async def main():
            async with svc(workers=1, elastic=True, max_workers=4) as s:
                # Distinct specs so nothing coalesces or serves cached:
                # a burst deeper than the 1-worker pool forces a grow.
                jobs = [s.submit(RunSpec(kind="hybrid", n=6000 + 100 * i))
                        for i in range(6)]
                results = await asyncio.gather(*jobs)
                grown = s.stats()["pool"]
                # Drain completely, then poke the scheduler once more so
                # it sees depth 0 and shrinks back to min_workers.
                await s.submit(RunSpec(kind="hybrid", n=6000))
                return results, grown, s.stats()["pool"]

        results, grown, final = asyncio.run(main())
        assert all(r["status"] == "ok" for r in results)
        assert grown["resizes"] >= 1
        assert final["workers"] == final["min_workers"] == 1
        assert final["max_workers"] == 4 and final["elastic"] is True

    def test_static_pool_never_resizes(self):
        async def main():
            async with svc(workers=2) as s:
                await s.submit(SPEC)
                return s.stats()["pool"]

        pool = asyncio.run(main())
        assert pool["elastic"] is False and pool["resizes"] == 0

    def test_bounds_require_elastic_mode(self):
        with pytest.raises(ValueError):
            Service(use_processes=False, workers=2, max_workers=4)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Service(use_processes=False, workers=2, elastic=True,
                    min_workers=3, max_workers=2)
