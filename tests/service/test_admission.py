"""AdmissionController: bounds, shedding, deficit-round-robin fairness."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.admission import AdmissionController


def drain(ctrl, limit=None):
    """Take until empty; returns the grant order."""
    order = []
    while len(ctrl):
        got = ctrl.take(limit=limit)
        assert got, "non-empty controller must always grant"
        order.extend(got)
    return order


class TestBounds:
    def test_single_tenant_fifo(self):
        ctrl = AdmissionController()
        for i in range(5):
            assert ctrl.offer("t", i)
        assert drain(ctrl) == [0, 1, 2, 3, 4]

    def test_global_bound_sheds(self):
        ctrl = AdmissionController(max_queue=3)
        assert all(ctrl.offer("a", i) for i in range(3))
        assert not ctrl.offer("a", 99)
        assert not ctrl.offer("b", 99)  # the bound is global, not per-tenant
        assert ctrl.rejected == 2 and ctrl.accepted == 3
        ctrl.take()
        assert ctrl.offer("b", 100)  # space freed: admission resumes

    def test_take_on_empty_returns_nothing(self):
        ctrl = AdmissionController()
        assert ctrl.take() == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(quantum=0)
        with pytest.raises(ValueError):
            AdmissionController().offer("t", 1, cost=0)
        with pytest.raises(ValueError):
            AdmissionController().take(limit=0)


class TestFairness:
    def test_round_robin_interleaves_tenants(self):
        ctrl = AdmissionController()
        for i in range(3):
            ctrl.offer("a", f"a{i}")
        for i in range(3):
            ctrl.offer("b", f"b{i}")
        order = drain(ctrl, limit=1)
        # Unit costs, unit quantum: strict alternation, neither starves.
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_flood_of_expensive_jobs_cannot_starve_cheap_tenant(self):
        ctrl = AdmissionController(quantum=1.0)
        for i in range(3):
            ctrl.offer("flood", f"big{i}", cost=4.0)
        for i in range(3):
            ctrl.offer("polite", f"small{i}", cost=1.0)
        order = drain(ctrl)
        # All three cheap jobs land before the flood's *second* job: the
        # flood spends four turns of deficit per job while the polite
        # tenant serves one job per turn.
        assert order.index("small2") < order.index("big1")

    def test_expensive_head_job_accumulates_deficit_and_still_runs(self):
        ctrl = AdmissionController(quantum=1.0)
        ctrl.offer("t", "huge", cost=5.0)
        assert ctrl.take() == ["huge"]  # rotation repeats until eligible

    def test_emptied_tenant_deficit_cleared(self):
        ctrl = AdmissionController(quantum=1.0)
        ctrl.offer("t", "x", cost=1.0)
        ctrl.take()
        # Idleness earned no credit: a cost-2 job still needs two turns
        # of deficit, it cannot spend leftovers from the emptied queue.
        ctrl.offer("other", "y", cost=1.0)
        ctrl.offer("t", "z", cost=2.0)
        order = drain(ctrl, limit=1)
        assert order == ["y", "z"]

    def test_limit_caps_one_turn(self):
        ctrl = AdmissionController(quantum=10.0)
        for i in range(6):
            ctrl.offer("t", i)
        got = ctrl.take(limit=4)
        assert got == [0, 1, 2, 3]
        assert len(ctrl) == 2


class TestObservability:
    def test_counters_and_stats(self):
        reg = MetricsRegistry()
        ctrl = AdmissionController(max_queue=2, metrics=reg)
        ctrl.offer("a", 1)
        ctrl.offer("b", 2)
        ctrl.offer("a", 3)  # shed
        ctrl.take(limit=1)
        assert reg.counter("service.admission.accepted").value == 2
        assert reg.counter("service.admission.rejected").value == 1
        assert reg.counter("service.admission.served").value == 1
        assert reg.gauge("service.admission.queue_peak").value == 2
        s = ctrl.stats()
        assert s["accepted"] == 2 and s["rejected"] == 1 and s["served"] == 1
        assert s["depth"] == 1
