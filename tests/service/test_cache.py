"""ResultCache: tiers, LRU, status filtering, artifact helpers."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.cache import (
    SCHEMA,
    ResultCache,
    failure_artifact,
    load_artifact,
    ok_artifact,
)
from repro.spec import RunSpec

SPEC = RunSpec(kind="hybrid", n=12000)


def _ok(n=12000):
    s = RunSpec(kind="hybrid", n=n)
    return ok_artifact(s, {"gflops": 1.0, "n": n}, elapsed_s=0.01)


class TestArtifactHelpers:
    def test_ok_artifact_shape(self):
        doc = ok_artifact(SPEC, {"gflops": 2.0}, elapsed_s=0.5)
        assert doc["schema"] == SCHEMA
        assert doc["status"] == "ok"
        assert doc["spec_hash"] == SPEC.canonical_hash()
        assert doc["spec"] == SPEC.to_dict()
        assert doc["elapsed_s"] == 0.5
        assert doc["result"] == {"gflops": 2.0}

    def test_failure_artifact_shape(self):
        doc = failure_artifact(SPEC, "timeout", "too slow")
        assert doc["schema"] == SCHEMA
        assert doc["status"] == "timeout"
        assert doc["error"] == "too slow"
        assert doc["elapsed_s"] is None
        assert doc["spec_hash"] == SPEC.canonical_hash()

    def test_load_artifact_rejects_foreign_schema(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"schema": "campaign-run-v999", "status": "ok"}))
        assert load_artifact(p) is None
        p.write_text("not json at all")
        assert load_artifact(p) is None
        assert load_artifact(tmp_path / "missing.json") is None
        p.write_text(json.dumps({"schema": SCHEMA, "status": "ok"}))
        assert load_artifact(p) == {"schema": SCHEMA, "status": "ok"}


class TestMemoryTier:
    def test_put_then_get_serves_a_copy(self):
        cache = ResultCache()
        doc = _ok()
        cache.put(doc)
        hit = cache.get(doc["spec_hash"])
        assert hit == doc
        hit["status"] = "mutated"
        assert cache.get(doc["spec_hash"])["status"] == "ok"

    def test_miss_returns_none_and_counts(self):
        cache = ResultCache()
        assert cache.get("0" * 16) is None
        assert cache.misses == 1 and cache.requests == 1
        assert cache.hit_rate == 0.0

    def test_failures_never_served(self):
        cache = ResultCache()
        doc = failure_artifact(SPEC, "error", "boom")
        cache.put(doc)
        assert cache.get(doc["spec_hash"]) is None
        assert doc["spec_hash"] not in cache

    def test_lru_evicts_coldest(self):
        cache = ResultCache(memory_entries=2)
        a, b, c = _ok(6000), _ok(12000), _ok(24000)
        cache.put(a)
        cache.put(b)
        cache.get(a["spec_hash"])  # refresh a: b becomes coldest
        cache.put(c)
        assert cache.evictions == 1
        assert cache.get(a["spec_hash"]) is not None
        assert cache.get(c["spec_hash"]) is not None
        assert cache.get(b["spec_hash"]) is None

    def test_put_requires_spec_hash(self):
        with pytest.raises(ValueError):
            ResultCache().put({"schema": SCHEMA, "status": "ok"})


class TestDiskTier:
    def test_put_persists_and_new_instance_serves_from_disk(self, tmp_path):
        doc = _ok()
        ResultCache(disk_dir=tmp_path).put(doc)
        on_disk = json.loads((tmp_path / f"{doc['spec_hash']}.json").read_text())
        assert on_disk == doc

        fresh = ResultCache(disk_dir=tmp_path)
        hit = fresh.get(doc["spec_hash"])
        assert hit == doc
        assert fresh.hits_disk == 1
        # Disk hits are promoted: the second lookup is a memory hit.
        fresh.get(doc["spec_hash"])
        assert fresh.hits_memory == 1

    def test_failures_persist_to_disk_but_do_not_serve(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        doc = failure_artifact(SPEC, "crash", "killed")
        cache.put(doc)
        assert (tmp_path / f"{doc['spec_hash']}.json").exists()
        assert ResultCache(disk_dir=tmp_path).get(doc["spec_hash"]) is None

    def test_cached_flag_is_never_persisted(self, tmp_path):
        doc = dict(_ok())
        doc["cached"] = True
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(doc)
        on_disk = json.loads((tmp_path / f"{doc['spec_hash']}.json").read_text())
        assert "cached" not in on_disk
        assert "cached" not in cache.get(doc["spec_hash"])

    def test_memory_entries_zero_is_pure_disk(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path, memory_entries=0)
        doc = _ok()
        cache.put(doc)
        assert cache.get(doc["spec_hash"]) == doc
        assert cache.get(doc["spec_hash"]) == doc
        assert cache.hits_disk == 2 and cache.hits_memory == 0

    def test_contains_checks_both_tiers(self, tmp_path):
        doc = _ok()
        ResultCache(disk_dir=tmp_path).put(doc)
        fresh = ResultCache(disk_dir=tmp_path)
        assert doc["spec_hash"] in fresh
        assert "f" * 16 not in fresh


class TestMetrics:
    def test_lookups_publish_service_cache_counters(self):
        reg = MetricsRegistry()
        cache = ResultCache(metrics=reg)
        doc = _ok()
        cache.put(doc)
        cache.get(doc["spec_hash"])
        cache.get("0" * 16)
        assert reg.counter("service.cache.stores").value == 1
        assert reg.counter("service.cache.hits_memory").value == 1
        assert reg.counter("service.cache.misses").value == 1
        assert reg.gauge("service.cache.memory_entries").value == 1

    def test_stats_snapshot(self):
        cache = ResultCache()
        doc = _ok()
        cache.put(doc)
        cache.get(doc["spec_hash"])
        s = cache.stats()
        assert s["stores"] == 1 and s["hits_memory"] == 1
        assert s["hit_rate"] == 1.0
