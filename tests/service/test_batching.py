"""Batcher: coalescing rules, cost ceiling, order preservation."""

from types import SimpleNamespace

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.batching import Batcher
from repro.spec import RunSpec


def job(key="k", cost=1.0):
    return SimpleNamespace(key=key, cost=cost)


def batcher(**kw):
    kw.setdefault("key", lambda j: j.key)
    kw.setdefault("cost", lambda j: j.cost)
    return Batcher(**kw)


class TestPlan:
    def test_compatible_jobs_coalesce_up_to_max(self):
        b = batcher(max_jobs=3)
        jobs = [job() for _ in range(7)]
        plan = b.plan(jobs)
        assert [len(batch) for batch in plan] == [3, 3, 1]
        assert [j for batch in plan for j in batch] == jobs

    def test_key_change_starts_a_new_batch(self):
        b = batcher()
        jobs = [job("a"), job("a"), job("b"), job("a")]
        plan = b.plan(jobs)
        # Only *consecutive* compatibility merges: scheduling order is
        # the fairness layer's decision and is never reordered.
        assert [len(batch) for batch in plan] == [2, 1, 1]

    def test_costly_job_always_dispatches_alone(self):
        b = batcher(max_cost_units=2.0)
        jobs = [job(), job(cost=5.0), job()]
        plan = b.plan(jobs)
        assert [len(batch) for batch in plan] == [1, 1, 1]
        assert plan[1] == [jobs[1]]

    def test_two_costly_jobs_with_same_key_do_not_merge(self):
        b = batcher(max_cost_units=2.0)
        plan = b.plan([job(cost=9.0), job(cost=9.0)])
        assert [len(batch) for batch in plan] == [1, 1]

    def test_max_jobs_one_disables_coalescing(self):
        b = batcher(max_jobs=1)
        assert [len(x) for x in b.plan([job(), job()])] == [1, 1]

    def test_empty_plan(self):
        assert batcher().plan([]) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Batcher(max_jobs=0)
        with pytest.raises(ValueError):
            Batcher(max_cost_units=0)


class TestSpecDefaults:
    def test_default_key_and_cost_come_from_the_spec(self):
        b = Batcher(max_jobs=4)
        jobs = [SimpleNamespace(spec=RunSpec(kind="hybrid", n=n))
                for n in (6000, 12000, 24000)]
        # Same kind/machine/numeric/executor: one batch despite distinct n.
        assert [len(x) for x in b.plan(jobs)] == [3]

    def test_different_kind_never_merges(self):
        b = Batcher(max_jobs=4)
        jobs = [SimpleNamespace(spec=RunSpec(kind="hybrid", n=12000)),
                SimpleNamespace(spec=RunSpec(kind="native", n=2000))]
        assert [len(x) for x in b.plan(jobs)] == [1, 1]

    def test_numeric_run_is_too_costly_to_batch(self):
        # A real factorization's cost estimate dwarfs the default
        # ceiling; it must never delay a batch of model runs.
        b = Batcher(max_jobs=4)
        jobs = [SimpleNamespace(spec=RunSpec(kind="hybrid", n=12000)),
                SimpleNamespace(
                    spec=RunSpec(kind="native", n=2000, numeric=True)),
                SimpleNamespace(spec=RunSpec(kind="hybrid", n=12000, nb=600))]
        assert [len(x) for x in b.plan(jobs)] == [1, 1, 1]


class TestSpecHelpers:
    def test_batch_key_ignores_presentation_only_differences(self):
        a = RunSpec(kind="hybrid", n=6000)
        b = RunSpec(kind="hybrid", n=24000, nb=600, seed=7)
        assert a.batch_key() == b.batch_key()

    def test_batch_key_separates_execution_modes(self):
        base = RunSpec(kind="hybrid", n=12000)
        assert base.batch_key() != RunSpec(kind="native", n=2000).batch_key()
        assert (base.batch_key()
                != RunSpec(kind="hybrid", n=12000, numeric=True).batch_key())
        assert (base.batch_key()
                != RunSpec(kind="hybrid", n=12000,
                           machine="knc-2card-64gb").batch_key())

    def test_cost_units_orders_model_below_numeric(self):
        model = RunSpec(kind="hybrid", n=12000).cost_units()
        numeric = RunSpec(kind="native", n=2000, numeric=True).cost_units()
        dist = RunSpec(kind="distributed", n=2000, nb=100,
                       p=2, q=2).cost_units()
        assert model >= 1.0
        assert numeric > model and dist > model
        # Bigger problems cost more within a mode.
        assert (RunSpec(kind="hybrid", n=96000).cost_units()
                >= RunSpec(kind="hybrid", n=12000).cost_units())


class TestStats:
    def test_counters_accumulate_and_publish(self):
        b = batcher(max_jobs=4)
        b.plan([job(), job(), job()])
        b.plan([job("x"), job("y")])
        s = b.stats()
        assert s == {"batches": 3, "jobs": 5, "coalesced": 2, "largest": 3}
        reg = MetricsRegistry()
        b.publish(reg)
        assert reg.counter("service.batch.jobs").value == 5
        assert reg.counter("service.batch.coalesced").value == 2
        assert reg.gauge("service.batch.largest").value == 3
