"""Cache-key correctness: the canonical hash is the service's identity.

Every layer of the serving stack — result cache, single-flight table,
campaign resume — keys on ``RunSpec.canonical_hash()``. These tests pin
the properties that make that safe: stability across processes,
insensitivity to dict key order, sensitivity to semantic fields, and
the *documented* collision semantics of presentation fields (a machine
shorthand hashes differently from its expansion, defaults hash the
same as their explicit values).
"""

import json
import pathlib
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec import RunSpec

REPO = pathlib.Path(__file__).resolve().parents[2]


def _spec_dicts():
    """Valid hybrid-model spec dicts over a few semantic axes."""
    return st.builds(
        lambda n, nb, seed, cards: {
            "kind": "hybrid", "n": 1200 * n, "nb": nb, "seed": seed,
            "cards": cards,
        },
        n=st.integers(min_value=2, max_value=40),
        nb=st.sampled_from([600, 1200]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        cards=st.sampled_from([1, 2]),
    )


class TestStability:
    def test_hash_is_16_hex_chars(self):
        digest = RunSpec(kind="hybrid", n=12000).canonical_hash()
        assert len(digest) == 16
        int(digest, 16)  # raises if not hex

    def test_hash_stable_across_processes(self):
        """A disk cache written by one process must serve another."""
        specs = [
            {"kind": "hybrid", "n": 12000},
            {"kind": "native", "n": 2000, "numeric": True},
            {"kind": "distributed", "n": 48, "nb": 8, "p": 2, "q": 2},
            {"kind": "hybrid", "n": 24000, "machine": "knc-2card-64gb"},
        ]
        code = (
            "import json, sys\n"
            "from repro.spec import RunSpec\n"
            "for d in json.load(sys.stdin):\n"
            "    print(RunSpec.from_dict(d).canonical_hash())\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], input=json.dumps(specs),
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        theirs = proc.stdout.split()
        ours = [RunSpec.from_dict(d).canonical_hash() for d in specs]
        assert theirs == ours

    @settings(max_examples=50, deadline=None)
    @given(_spec_dicts(), st.randoms(use_true_random=False))
    def test_from_dict_key_order_is_irrelevant(self, doc, rng):
        items = list(doc.items())
        rng.shuffle(items)
        shuffled = dict(items)
        assert (RunSpec.from_dict(shuffled).canonical_hash()
                == RunSpec.from_dict(doc).canonical_hash())

    @settings(max_examples=50, deadline=None)
    @given(_spec_dicts())
    def test_to_dict_round_trip_preserves_the_hash(self, doc):
        spec = RunSpec.from_dict(doc)
        again = RunSpec.from_dict(spec.to_dict())
        assert again.canonical_hash() == spec.canonical_hash()
        assert (RunSpec.from_dict(spec.normalized().to_dict()).canonical_hash()
                == spec.canonical_hash())


class TestSensitivity:
    @settings(max_examples=50, deadline=None)
    @given(_spec_dicts(), _spec_dicts())
    def test_distinct_normalized_specs_hash_differently(self, a, b):
        sa, sb = RunSpec.from_dict(a), RunSpec.from_dict(b)
        if sa.normalized().to_dict() != sb.normalized().to_dict():
            assert sa.canonical_hash() != sb.canonical_hash()
        else:
            assert sa.canonical_hash() == sb.canonical_hash()

    def test_each_semantic_field_changes_the_hash(self):
        base = RunSpec(kind="hybrid", n=12000)
        variants = [
            RunSpec(kind="hybrid", n=24000),
            RunSpec(kind="hybrid", n=12000, nb=600),
            RunSpec(kind="hybrid", n=12000, seed=7),
            RunSpec(kind="hybrid", n=12000, cards=2),
            RunSpec(kind="hybrid", n=12000, numeric=True),
            RunSpec(kind="hybrid", n=12000, dtype="float32"),
            RunSpec(kind="hybrid", n=12000, dtype="float32", mxp=True),
            RunSpec(kind="hybrid", n=12000, dtype="float32", mxp=True,
                    refine_tol=0.5),
            RunSpec(kind="hybrid", n=12000, dtype="float32", mxp=True,
                    refine_max_iters=4),
        ]
        hashes = {base.canonical_hash()}
        for v in variants:
            hashes.add(v.canonical_hash())
        assert len(hashes) == len(variants) + 1


class TestDocumentedCollisionSemantics:
    def test_defaults_hash_like_their_explicit_values(self):
        """``nb=None`` and the kind's explicit default are one identity:
        they execute identically, so they must share a cache entry."""
        implicit = RunSpec(kind="hybrid", n=12000)
        explicit = RunSpec(kind="hybrid", n=12000,
                           nb=implicit.normalized().nb)
        assert implicit.canonical_hash() == explicit.canonical_hash()

    def test_machine_shorthand_does_not_collide_with_its_expansion(self):
        """Deliberate non-collision: the shorthand names a profile whose
        parameters may be retuned; hashing it apart from the explicit
        cards/mem_gb spelling keeps old artifacts from shadowing runs
        under a retuned profile."""
        short = RunSpec(kind="hybrid", n=12000, machine="knc-2card-64gb")
        norm = short.normalized()
        explicit = RunSpec(kind="hybrid", n=12000,
                           cards=norm.cards, mem_gb=norm.mem_gb)
        assert norm.cards == 2  # the shorthand did expand
        assert short.canonical_hash() != explicit.canonical_hash()

    def test_normalization_is_idempotent_for_hashing(self):
        spec = RunSpec(kind="distributed", n=48, nb=8, p=2, q=2)
        assert (spec.normalized().canonical_hash()
                == spec.canonical_hash()
                == spec.normalized().normalized().canonical_hash())


class TestPrecisionCaching:
    """A warm DP cache must never answer for an MxP (or SP) request —
    the precision axes are part of the canonical identity."""

    def test_mxp_spelling_with_and_without_numeric_is_one_identity(self):
        """``--mxp`` alone folds ``numeric=True`` for native/hybrid, so
        both spellings execute identically and must share a cache
        entry."""
        bare = RunSpec(kind="native", n=2000, dtype="float32", mxp=True)
        explicit = RunSpec(kind="native", n=2000, dtype="float32",
                           mxp=True, numeric=True)
        assert bare.canonical_hash() == explicit.canonical_hash()

    def test_warm_dp_cache_misses_for_mxp_request(self):
        from repro.api import run_cached
        from repro.service.cache import ResultCache

        cache = ResultCache()
        dp = RunSpec(kind="native", n=64, nb=16, numeric=True, workers=1)
        mxp = RunSpec(kind="native", n=64, nb=16, workers=1,
                      dtype="float32", mxp=True)
        first = run_cached(dp, cache)
        assert first["status"] == "ok" and first["cached"] is False
        served = run_cached(mxp, cache)
        assert served["cached"] is False  # DP entry must not answer
        assert served["spec_hash"] != first["spec_hash"]
        assert served["result"]["refine"]["iterations"] >= 1
        assert first["result"].get("refine") is None
        # Both are now warm under their own identities.
        assert run_cached(dp, cache)["cached"] is True
        assert run_cached(mxp, cache)["cached"] is True
