"""The NDJSON front end: TCP round-trips, stdio transport, protocol."""

import asyncio
import json
import pathlib
import subprocess
import sys

import pytest

from repro.service import Service, ServiceClient, ServiceError, serve
from repro.spec import RunSpec

REPO = pathlib.Path(__file__).resolve().parents[2]
SPEC = RunSpec(kind="hybrid", n=12000)


async def _with_server(body, **service_kw):
    """Run ``body(client, service)`` against an in-process TCP server."""
    service_kw.setdefault("use_processes", False)
    service_kw.setdefault("workers", 2)
    svc = Service(**service_kw)
    ready = asyncio.Event()
    server_task = asyncio.ensure_future(serve(svc, port=0, ready=ready))
    await ready.wait()
    try:
        async with ServiceClient("127.0.0.1", svc.bound_port) as client:
            return await body(client, svc)
    finally:
        server_task.cancel()
        await asyncio.gather(server_task, return_exceptions=True)
        await svc.close()


class TestTCP:
    def test_submit_round_trip_and_cached_second_serve(self):
        async def body(client, _svc):
            events = []
            first = await client.submit(
                SPEC, on_event=lambda e: events.append(e["event"])
            )
            second = await client.submit(SPEC)
            return first, second, events

        first, second, events = asyncio.run(_with_server(body))
        assert first["status"] == "ok" and first["cached"] is False
        assert first["result"]["gflops"] > 0
        assert second["cached"] is True
        assert events == ["queued", "running", "done"]

    def test_concurrent_submissions_multiplex_one_connection(self):
        async def body(client, svc):
            specs = [RunSpec(kind="hybrid", n=6000 + 1200 * i)
                     for i in range(4)]
            results = await client.submit_many(specs)
            return results, svc.requests

        results, requests = asyncio.run(_with_server(body))
        assert [r["status"] for r in results] == ["ok"] * 4
        assert len({r["spec_hash"] for r in results}) == 4
        assert requests == 4

    def test_ping_and_stats(self):
        async def body(client, _svc):
            assert await client.ping()
            await client.submit(SPEC)
            return await client.stats()

        stats = asyncio.run(_with_server(body))
        assert stats["requests"] == 1
        assert stats["cache"]["stores"] == 1
        assert "latency" in stats and "admission" in stats

    def test_invalid_spec_answers_error_line(self):
        async def body(client, _svc):
            with pytest.raises(ServiceError, match="invalid spec"):
                await client.submit({"kind": "nope", "n": -1})
            return await client.ping()  # the connection survives

        assert asyncio.run(_with_server(body))

    def test_unknown_op_answers_error_line(self):
        async def body(client, _svc):
            with pytest.raises(ServiceError, match="unknown op"):
                await client._request({"op": "explode"})
            return True

        assert asyncio.run(_with_server(body))

    def test_tenant_is_forwarded(self):
        async def body(client, svc):
            await client.submit(SPEC, tenant="alice")
            return svc.admission.stats()

        stats = asyncio.run(_with_server(body))
        assert stats["accepted"] == 1


class TestStdio:
    def _run_stdio(self, lines, timeout=90):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "service", "serve",
             "--stdio", "--threads", "--workers", "2"],
            input="".join(line + "\n" for line in lines),
            capture_output=True, text=True, timeout=timeout,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        return [json.loads(line) for line in proc.stdout.splitlines()]

    def test_pipe_round_trip(self):
        spec = SPEC.to_dict()
        msgs = self._run_stdio([
            json.dumps({"op": "ping", "id": "p"}),
            json.dumps({"op": "submit", "id": "1", "spec": spec}),
        ])
        by_event = {}
        for m in msgs:
            by_event.setdefault(m["event"], []).append(m)
        assert by_event["pong"][0]["id"] == "p"
        (result,) = by_event["result"]
        assert result["id"] == "1"
        assert result["artifact"]["status"] == "ok"
        assert result["artifact"]["spec_hash"] == SPEC.canonical_hash()

    def test_duplicate_requests_share_one_execution(self):
        spec = SPEC.to_dict()
        msgs = self._run_stdio([
            json.dumps({"op": "submit", "id": str(i), "spec": spec})
            for i in range(3)
        ] + [json.dumps({"op": "stats", "id": "s"})])
        results = [m for m in msgs if m["event"] == "result"]
        assert len(results) == 3
        assert all(m["artifact"]["status"] == "ok" for m in results)
        stats = next(m for m in msgs if m["event"] == "stats")["stats"]
        # One execution: every duplicate was coalesced or cache-served.
        assert stats["cache"]["stores"] == 1

    def test_malformed_line_answers_error_and_continues(self):
        msgs = self._run_stdio([
            "this is not json",
            json.dumps({"op": "ping", "id": "p"}),
        ])
        events = [m["event"] for m in msgs]
        assert "error" in events and "pong" in events
