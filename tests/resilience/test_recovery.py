"""End-to-end rollback recovery: crash + corruption, bitwise-identical results.

The acceptance scenario from the resilience subsystem: a seeded 2 x 2
distributed run with an injected rank crash and message corruption must
recover via checkpoint/retry and produce **bitwise-identical** lu, ipiv
and x versus the undisturbed run — for both the synchronous and the
look-ahead schedules.
"""

import numpy as np
import pytest

from repro.cluster.hpl_mpi import DistributedHPL
from repro.resilience import CheckpointStore, RankCrashError, RetryPolicy

CFG = dict(n=96, nb=16, p=2, q=2, seed=42)
PLAN = "seed=5;crash:rank=3,stage=3;corrupt:op=send,count=2"
RETRY = RetryPolicy(comm_timeout_s=0.5, max_retries=2)


def _baseline(lookahead=False):
    return DistributedHPL(**CFG, lookahead=lookahead).run()


def _assert_bitwise(r, ref):
    assert np.array_equal(r.lu, ref.lu)
    assert np.array_equal(r.ipiv, ref.ipiv)
    assert np.array_equal(r.x, ref.x)
    assert r.residual == ref.residual
    assert r.passed


class TestCrashRecovery:
    @pytest.mark.parametrize("lookahead", [False, True],
                             ids=["sync", "lookahead"])
    def test_crash_plus_corruption_recovers_bitwise(self, lookahead):
        ref = _baseline(lookahead)
        r = DistributedHPL(**CFG, lookahead=lookahead, fault_plan=PLAN,
                           checkpoint_every=2, retry=RETRY).run()
        _assert_bitwise(r, ref)
        res = r.resilience
        assert res is not None
        assert res["recoveries"] == 1
        assert res["attempts"] == 2
        assert res["corruption_detected"] >= 1
        assert res["faults_injected"]["crash"] == 1
        assert res["checkpoints"] > 0
        assert res["restores"] == 4  # every rank restored once

    def test_crash_without_checkpoint_raises(self):
        with pytest.raises(RankCrashError):
            DistributedHPL(**CFG, fault_plan="crash:rank=1,stage=2",
                           retry=RETRY).run()

    def test_max_recoveries_zero_reraises(self):
        with pytest.raises(RankCrashError):
            DistributedHPL(**CFG, fault_plan="crash:rank=1,stage=4",
                           checkpoint_every=2, retry=RETRY,
                           max_recoveries=0).run()

    def test_disk_checkpoint_store(self, tmp_path):
        ref = _baseline()
        store = CheckpointStore(dir=str(tmp_path / "ckpt"))
        r = DistributedHPL(**CFG, fault_plan="crash:rank=2,stage=4",
                           checkpoint_every=2, checkpoint_store=store,
                           retry=RETRY).run()
        _assert_bitwise(r, ref)
        assert r.resilience["recoveries"] == 1
        assert store.cursors(0)  # blobs landed on disk


class TestTransparentHealing:
    def test_drop_and_duplicate_heal_bitwise(self):
        ref = _baseline()
        r = DistributedHPL(**CFG, retry=RETRY,
                           fault_plan="seed=9;drop:op=send,count=2;"
                                      "duplicate:op=send,count=2").run()
        _assert_bitwise(r, ref)
        res = r.resilience
        assert res["recoveries"] == 0
        assert res["resends"] >= 1
        assert res["duplicates_dropped"] >= 1

    def test_retry_only_run_matches_plain_run(self):
        ref = _baseline()
        r = DistributedHPL(**CFG, retry=RETRY).run()
        _assert_bitwise(r, ref)
        assert r.resilience["attempts"] == 1
        assert r.resilience["recoveries"] == 0

    def test_plain_run_has_no_resilience_block(self):
        assert _baseline().resilience is None


class TestResilienceReporting:
    def test_metrics_mirror_resilience_counters(self):
        r = DistributedHPL(**CFG, fault_plan=PLAN, checkpoint_every=2,
                           retry=RETRY).run()
        m = r.metrics.to_dict()
        counters = m["counters"]
        assert counters["resilience.recoveries"] == 1
        assert counters["resilience.attempts"] == 2
        assert counters["resilience.checkpoints"] == r.resilience["checkpoints"]
        assert counters["resilience.restores"] == 4
        assert "resilience.checkpoint_time_s" in m["timers"]

    def test_to_dict_carries_resilience(self):
        r = DistributedHPL(**CFG, retry=RETRY).run()
        d = r.to_dict()
        assert d["resilience"]["attempts"] == 1
        plain = _baseline().to_dict()
        assert plain["resilience"] is None
