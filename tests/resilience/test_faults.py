"""FaultPlan parsing/round-trips and FaultInjector determinism."""

import numpy as np
import pytest

from repro.resilience import FaultInjector, FaultPlan, FaultSpec, RankCrashError


class TestFaultPlanParsing:
    def test_dsl_parses_kinds_and_fields(self):
        plan = FaultPlan.parse(
            "seed=7;crash:rank=1,stage=3;drop:op=send,count=2,skip=1;"
            "corrupt:op=bcast,tag=-2;duplicate:src=0,dest=1;"
            "slow:rank=2,delay=0.001,jitter=0.0005"
        )
        assert plan.seed == 7
        kinds = [f.kind for f in plan.faults]
        assert kinds == ["crash", "drop", "corrupt", "duplicate", "slow"]
        crash, drop, corrupt, dup, slow = plan.faults
        assert (crash.rank, crash.stage) == (1, 3)
        assert (drop.op, drop.count, drop.skip) == ("send", 2, 1)
        assert (corrupt.op, corrupt.tag) == ("bcast", -2)
        assert (dup.src, dup.dest) == (0, 1)
        assert slow.delay_s == pytest.approx(0.001)
        assert slow.jitter_s == pytest.approx(0.0005)

    def test_json_round_trip(self):
        plan = FaultPlan.parse("seed=11;crash:rank=0,stage=2;corrupt:op=send")
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_load_accepts_plan_dsl_json_and_path(self, tmp_path):
        plan = FaultPlan.parse("seed=5;drop:op=send")
        assert FaultPlan.load(plan) is plan
        assert FaultPlan.load("seed=5;drop:op=send") == plan
        assert FaultPlan.load(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.load(str(path)) == plan

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor")
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", rank=1)  # no stage
        with pytest.raises(ValueError):
            FaultSpec(kind="slow")  # no rank
        with pytest.raises(ValueError):
            FaultSpec(kind="drop", count=0)
        with pytest.raises(ValueError):
            FaultPlan.parse("drop:bogus=1")


class TestFaultInjector:
    def test_crash_is_one_shot(self):
        inj = FaultInjector(FaultPlan.parse("crash:rank=1,stage=2"))
        inj.crash_point(0, 2)  # wrong rank: nothing
        inj.crash_point(1, 1)  # wrong stage: nothing
        with pytest.raises(RankCrashError):
            inj.crash_point(1, 2)
        inj.crash_point(1, 2)  # consumed: the retry run survives

    def test_wire_action_skip_and_count(self):
        inj = FaultInjector(FaultPlan.parse("drop:op=send,skip=1,count=2"))
        actions = [inj.wire_action(0, 1, 0, "send") for _ in range(5)]
        assert actions == [None, "drop", "drop", None, None]
        # non-matching op never fires
        assert inj.wire_action(0, 1, 0, "bcast") is None

    def test_corrupt_flips_exactly_one_bit_deterministically(self):
        def run():
            inj = FaultInjector(FaultPlan(seed=13))
            arr = np.arange(32, dtype=np.float64)
            inj.corrupt_arrays([arr])
            return arr

        a, b = run(), run()
        clean = np.arange(32, dtype=np.float64)
        diff = a.view(np.uint8) ^ clean.view(np.uint8)
        assert int(np.unpackbits(diff).sum()) == 1  # exactly one bit
        assert np.array_equal(a, b)  # same seed, same flip

    def test_send_delay_seeded_and_per_rank(self):
        plan = FaultPlan.parse("seed=3;slow:rank=1,delay=0.002,jitter=0.001")
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        assert a.send_delay(0) == 0.0
        seq_a = [a.send_delay(1) for _ in range(4)]
        seq_b = [b.send_delay(1) for _ in range(4)]
        assert seq_a == seq_b
        assert all(0.002 <= d < 0.003 for d in seq_a)

    def test_fired_summary_counts_by_kind(self):
        inj = FaultInjector(FaultPlan.parse("drop:op=send,count=2;corrupt:op=send"))
        for _ in range(4):
            inj.wire_action(0, 1, 0, "send")
        assert inj.fired_summary() == {"drop": 2, "corrupt": 1}
