"""CheckpointStore round-trips: memory, disk, consistent cuts, stats."""

import io

import numpy as np
import pytest

from repro.resilience import CheckpointStore
from repro.resilience.checkpoint import (
    CheckpointLayoutError,
    LayoutHeader,
    pack_state,
    unpack_state,
)


def _sample_state():
    return {
        "tiles": np.arange(24, dtype=np.float64).reshape(4, 6) * 1.5,
        "ipiv": np.array([3, 1, 2, 0], dtype=np.int64),
        "cursor": 7,
        "epoch": 2,
        "scale": 0.125,
        "blocks": [np.eye(3), np.full((2, 2), -1.0)],
        "none_field": None,
    }


class TestPackUnpack:
    def test_round_trip_preserves_values_and_dtypes(self):
        state = _sample_state()
        out = unpack_state(pack_state(state))
        assert np.array_equal(out["tiles"], state["tiles"])
        assert out["tiles"].dtype == np.float64
        assert np.array_equal(out["ipiv"], state["ipiv"])
        assert out["ipiv"].dtype == np.int64
        assert out["cursor"] == 7 and isinstance(out["cursor"], int)
        assert out["scale"] == 0.125 and isinstance(out["scale"], float)
        assert len(out["blocks"]) == 2
        for got, want in zip(out["blocks"], state["blocks"]):
            assert np.array_equal(got, want)
        assert "none_field" not in out  # None values are dropped

    def test_empty_list_round_trips(self):
        assert unpack_state(pack_state({"xs": []})) == {"xs": []}

    def test_rejects_colon_keys_and_odd_types(self):
        with pytest.raises(ValueError):
            pack_state({"a:b": 1})
        with pytest.raises(TypeError):
            pack_state({"bad": object()})


class TestCheckpointStore:
    def test_memory_save_load_bitwise_and_isolated(self):
        store = CheckpointStore()
        state = _sample_state()
        nbytes = store.save(0, 4, state)
        assert nbytes > 0
        state["tiles"][:] = 0.0  # mutate after save: blob must not alias
        out = store.load(0, 4)
        assert np.array_equal(out["tiles"],
                              np.arange(24, dtype=np.float64).reshape(4, 6) * 1.5)
        out["ipiv"][:] = -1  # loads are fresh copies too
        assert np.array_equal(store.load(0, 4)["ipiv"], [3, 1, 2, 0])

    def test_disk_store_survives_new_instance(self, tmp_path):
        d = str(tmp_path / "ckpt")
        store = CheckpointStore(dir=d)
        store.save(1, 2, {"x": np.linspace(0.0, 1.0, 17)})
        fresh = CheckpointStore(dir=d)
        assert fresh.cursors(1) == [2]
        assert np.array_equal(fresh.load(1, 2)["x"], np.linspace(0.0, 1.0, 17))

    def test_missing_checkpoint_raises(self):
        with pytest.raises(KeyError):
            CheckpointStore().load(0, 0)

    def test_latest_complete_is_consistent_cut(self):
        store = CheckpointStore()
        state = {"v": np.zeros(1)}
        for cursor in (2, 4, 6):
            store.save(0, cursor, state)
        for cursor in (2, 4):
            store.save(1, cursor, state)
        assert store.latest_complete(2) == 4
        assert store.latest_complete(3) is None  # rank 2 never saved
        assert CheckpointStore().latest_complete(2) is None

    def test_stats_snapshot_counts(self):
        store = CheckpointStore()
        n = store.save(0, 1, {"v": np.zeros(8)})
        store.save(1, 1, {"v": np.zeros(8)})
        store.load(0, 1)
        snap = store.stats.snapshot()
        assert snap["checkpoints"] == 2
        assert snap["checkpoint_bytes"] == 2 * n
        assert snap["restores"] == 1
        assert snap["restored_bytes"] == n
        assert snap["checkpoint_time_s"] >= 0.0

    def test_legacy_npz_blob_still_loads(self):
        # Blobs written by the old np.savez container (no RCK1 magic)
        # must keep loading through the fallback path.
        store = CheckpointStore()
        flat = pack_state(_sample_state(), layout=LayoutHeader(2, 2, 16, 96))
        buf = io.BytesIO()
        np.savez(buf, **flat)
        store._blobs[(0, 3)] = buf.getvalue()
        out = store.load(0, 3, expect_layout=LayoutHeader(2, 2, 16, 96))
        assert np.array_equal(out["tiles"], _sample_state()["tiles"])
        assert store.layout(0, 3) == LayoutHeader(2, 2, 16, 96)

    def test_non_contiguous_arrays_round_trip(self):
        store = CheckpointStore()
        strided = np.arange(24.0).reshape(4, 6)[:, ::2]
        store.save(0, 1, {"a": strided})
        assert np.array_equal(store.load(0, 1)["a"], strided)


class TestLayoutHeader:
    def test_header_round_trips_through_store(self):
        store = CheckpointStore()
        layout = LayoutHeader(p=2, q=4, nb=16, n=96, dtype="float32")
        store.save(0, 2, {"v": np.zeros(3)}, layout=layout)
        assert store.layout(0, 2) == layout
        assert layout.describe() == "2x4 nb=16 n=96 float32"

    def test_matching_layout_loads(self):
        store = CheckpointStore()
        layout = LayoutHeader(2, 2, 16, 96)
        store.save(0, 2, {"v": np.zeros(3)}, layout=layout)
        assert "v" in store.load(0, 2, expect_layout=layout)

    def test_mismatched_layout_raises_with_both_geometries(self):
        store = CheckpointStore()
        store.save(0, 2, {"v": np.zeros(3)}, layout=LayoutHeader(2, 4, 16, 96))
        with pytest.raises(CheckpointLayoutError) as err:
            store.load(0, 2, expect_layout=LayoutHeader(2, 2, 16, 96))
        assert "2x4" in str(err.value) and "2x2" in str(err.value)

    def test_headerless_blob_loads_and_reports_no_layout(self):
        store = CheckpointStore()
        store.save(0, 2, {"v": np.zeros(3)})
        assert store.layout(0, 2) is None
        # Nothing recorded, nothing to check against.
        assert "v" in store.load(0, 2, expect_layout=LayoutHeader(2, 2, 16, 96))

    def test_header_keys_never_leak_into_state(self):
        store = CheckpointStore()
        store.save(0, 2, {"v": np.zeros(3)}, layout=LayoutHeader(1, 2, 8, 32))
        assert set(store.load(0, 2)) == {"v"}
