"""HPL residual test and the native benchmark driver."""

import numpy as np
import pytest

from repro.hpl.driver import HPLResult, NativeHPL, snb_hpl_efficiency, snb_hpl_gflops
from repro.hpl.matgen import hpl_system
from repro.hpl.residual import HPL_THRESHOLD, hpl_residual, residual_passes


class TestResidual:
    def test_exact_solution_passes(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((40, 40))
        x = rng.standard_normal(40)
        b = a @ x
        assert hpl_residual(a, x, b) < 1.0
        assert residual_passes(a, x, b)

    def test_garbage_solution_fails(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((40, 40))
        b = rng.standard_normal(40)
        assert not residual_passes(a, np.zeros(40), b + 1.0)

    def test_numpy_solve_passes_on_hpl_matrix(self):
        a, b = hpl_system(100, seed=3)
        x = np.linalg.solve(a, b)
        assert residual_passes(a, x, b)

    def test_threshold_value(self):
        assert HPL_THRESHOLD == 16.0

    def test_zero_system(self):
        a = np.zeros((3, 3))
        assert hpl_residual(a, np.zeros(3), np.zeros(3)) == 0.0
        # Unsatisfiable zero system: the scaled residual must fail the test.
        assert not residual_passes(a, np.zeros(3), np.ones(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            hpl_residual(np.zeros((2, 3)), np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            hpl_residual(np.zeros((3, 3)), np.zeros(2), np.zeros(3))


class TestSNBBaseline:
    def test_anchor_30k(self):
        # Figure 6: 277 GFLOPS / 83% at 30K.
        assert snb_hpl_efficiency(30000) == pytest.approx(0.83, abs=0.005)
        assert snb_hpl_gflops(30000) == pytest.approx(277, abs=3)

    def test_anchor_84k(self):
        # Table III CPU-only single node: 86.4%.
        assert snb_hpl_efficiency(84000) == pytest.approx(0.864, abs=0.005)

    def test_monotone(self):
        effs = [snb_hpl_efficiency(n) for n in (1000, 5000, 30000, 84000)]
        assert effs == sorted(effs)
        assert all(0 < e < 1 for e in effs)

    def test_invalid(self):
        with pytest.raises(ValueError):
            snb_hpl_efficiency(0)


class TestNativeDriver:
    def test_numeric_run_passes_residual(self):
        r = NativeHPL(180, nb=36).run(numeric=True)
        assert r.passed
        assert r.residual < HPL_THRESHOLD

    def test_static_numeric_run_passes(self):
        r = NativeHPL(150, nb=50, scheduler="static").run(numeric=True)
        assert r.passed

    def test_process_executor_numeric_matches_thread_bitwise(self):
        thread = NativeHPL(160, nb=40, workers=2).run(numeric=True)
        proc = NativeHPL(160, nb=40, workers=2, executor="process").run(
            numeric=True
        )
        assert proc.passed
        assert proc.residual == thread.residual  # same bits, same residual
        flat = dict(proc.metrics.flatten())
        assert flat["parallel.pool.backend.process"] == 1
        assert flat["parallel.pipe.max_message_bytes"] < 4096

    def test_unknown_executor_backend_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            NativeHPL(100, executor="mpi")

    def test_timing_only_run_has_no_residual(self):
        r = NativeHPL(2000).run()
        assert r.residual is None and r.passed is None
        assert r.gflops > 0

    def test_30k_reproduces_paper(self):
        # Section IV-B: "both schemes achieve 832 GFLOPS, which
        # corresponds to ~79% efficiency".
        r = NativeHPL(30000).run()
        assert r.gflops == pytest.approx(832, abs=25)
        assert r.efficiency == pytest.approx(0.788, abs=0.02)

    def test_knc_beats_snb_beyond_4k(self):
        # Figure 6: the KNC dynamic curve crosses the SNB curve.
        for n in (5000, 15000, 30000):
            assert NativeHPL(n).run().gflops > snb_hpl_gflops(n)

    def test_knc_advantage_shrinks_toward_small_sizes(self):
        # Figure 6's left edge: the curves close up (and cross in the
        # paper) as N shrinks — the small-N regime favours the host.
        ratio_small = NativeHPL(1000).run().gflops / snb_hpl_gflops(1000)
        ratio_large = NativeHPL(30000).run().gflops / snb_hpl_gflops(30000)
        assert ratio_small < 0.5 * ratio_large

    def test_memory_gate(self):
        # 8 GB of GDDR caps the native problem size near 30K (Section V).
        with pytest.raises(ValueError):
            NativeHPL(40000)

    def test_dynamic_no_slower_than_static(self):
        for n in (2000, 8000):
            dyn = NativeHPL(n, scheduler="dynamic").run()
            sta = NativeHPL(n, scheduler="static").run()
            assert dyn.gflops >= sta.gflops

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            NativeHPL(1000, scheduler="magic")

    def test_result_type(self):
        assert isinstance(NativeHPL(1000).run(), HPLResult)

    def test_solve_time_small_but_positive(self):
        d = NativeHPL(10000)
        assert 0 < d.solve_time_s() < 0.1
