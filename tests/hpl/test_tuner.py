"""HPL configuration auto-tuner."""

import pytest

from repro.hpl.tuner import TuneResult, grid_shapes, problem_size, tune

GB = 1024**3


class TestGridShapes:
    def test_all_factorisations_p_le_q(self):
        assert grid_shapes(100) == [(1, 100), (2, 50), (4, 25), (5, 20), (10, 10)]

    def test_prime_node_count(self):
        assert grid_shapes(7) == [(1, 7)]

    def test_single_node(self):
        assert grid_shapes(1) == [(1, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_shapes(0)


class TestProblemSize:
    def test_single_node_64gb_lands_near_paper_n(self):
        # 80% of 64 GB holds ~82K; the paper ran 84K on those nodes.
        n = problem_size(1, 64 * GB)
        assert 72_000 <= n <= 86_400
        assert n % 1200 == 0

    def test_scales_with_sqrt_nodes(self):
        n1 = problem_size(1, 64 * GB)
        n100 = problem_size(100, 64 * GB)
        assert n100 == pytest.approx(10 * n1, rel=0.02)

    def test_memory_scaling(self):
        assert problem_size(1, 128 * GB) > problem_size(1, 64 * GB)

    def test_validation(self):
        with pytest.raises(ValueError):
            problem_size(1, 64 * GB, fill_fraction=0.0)


class TestTune:
    def test_100_nodes_picks_square_grid(self):
        # HPL folk wisdom and the paper's own 10x10 choice.
        r = tune(100, nb_candidates=(1200,))
        assert (r.p, r.q) == (10, 10)
        assert r.lookahead == "pipelined"
        assert r.tflops > 90  # the paper's regime (107 TF at N=825K)

    def test_single_node_matches_paper_configuration(self):
        r = tune(1, nb_candidates=(1200,))
        assert (r.p, r.q) == (1, 1)
        assert 0.7 < r.efficiency < 0.85

    def test_explicit_n_respected(self):
        r = tune(4, n=84_000, nb_candidates=(1200,))
        assert r.n == 84_000

    def test_result_describe(self):
        r = tune(1, n=36_000, nb_candidates=(1200,))
        text = r.describe()
        assert "NB=1200" in text and "TFLOPS" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            tune(1, cards=0)
