"""HPL.dat parsing and running."""

import pathlib

import pytest

from repro.hpl.hpldat import (
    HPLDatConfig,
    depth_to_lookahead,
    format_hpl_output,
    parse_hpl_dat,
    run_hpl_dat,
)
from repro.hybrid.lookahead import Lookahead

EXAMPLE = pathlib.Path(__file__).parents[2] / "examples" / "HPL.dat"


class TestParsing:
    def test_parse_example_file(self):
        cfg = parse_hpl_dat(EXAMPLE.read_text())
        assert cfg.ns == [42000, 84000]
        assert cfg.nbs == [1200]
        assert cfg.ps == [1] and cfg.qs == [1]
        assert cfg.threshold == 16.0
        assert cfg.depths == [1, 2]

    def test_runs_cross_product(self):
        cfg = HPLDatConfig(ns=[10, 20], nbs=[2], ps=[1, 2], qs=[1, 2], depths=[0, 1])
        runs = cfg.runs()
        assert len(runs) == 2 * 1 * 2 * 2
        assert (10, 2, 1, 1, 0) in runs
        assert (20, 2, 2, 2, 1) in runs

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            parse_hpl_dat("just\nthree\nlines")

    def test_count_mismatch_raises(self):
        text = EXAMPLE.read_text().replace("42000 84000", "42000")
        with pytest.raises(ValueError):
            parse_hpl_dat(text)

    def test_missing_depths_keeps_default(self):
        lines = EXAMPLE.read_text().splitlines()[:13]
        cfg = parse_hpl_dat("\n".join(lines + ["", ""]))
        assert cfg.depths == [1]


class TestDepthMapping:
    def test_mapping(self):
        assert depth_to_lookahead(0) is Lookahead.NONE
        assert depth_to_lookahead(1) is Lookahead.BASIC
        assert depth_to_lookahead(2) is Lookahead.PIPELINED
        assert depth_to_lookahead(5) is Lookahead.PIPELINED

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            depth_to_lookahead(-1)


class TestRunAndFormat:
    def test_run_small_config(self):
        cfg = HPLDatConfig(ns=[24000], nbs=[1200], ps=[1], qs=[1], depths=[1, 2])
        rows = run_hpl_dat(cfg)
        assert len(rows) == 2
        basic, pipe = rows
        assert pipe.gflops > basic.gflops
        assert basic.variant.startswith("WR01")
        assert pipe.variant.startswith("WR02")

    def test_output_format_looks_like_hpl(self):
        cfg = HPLDatConfig(ns=[24000], depths=[2])
        out = format_hpl_output(run_hpl_dat(cfg))
        assert "T/V" in out and "Gflops" in out
        line = out.splitlines()[2]
        assert "24000" in line and "1200" in line
        assert "e+0" in line  # scientific-notation GFLOPS
