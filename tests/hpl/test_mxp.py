"""Mixed-precision HPL-MxP: refinement correctness and driver plumbing.

The scheme's load-bearing facts, each pinned here:

* the seeded generator rounds one stream, so the SP matrix is exactly
  the DP matrix rounded elementwise (and distributed SP local pieces
  agree with the rounded global matrix);
* :func:`~repro.hpl.mxp.refine_to_double` recovers a solution that
  passes the *double-precision* HPL residual check from an SP
  factorization, reports its iteration history, and falls back to a
  full-DP factorization when refinement stalls;
* all three drivers thread the knobs end to end and report per-phase
  timings plus the refinement record.
"""

import numpy as np
import pytest

from repro.hpl.matgen import hpl_matrix, hpl_submatrix, hpl_system
from repro.hpl.mxp import (
    expected_iterations,
    refine_model_time_s,
    refine_to_double,
)
from repro.hpl.residual import hpl_residual, residual_passes
from repro.lu.factorize import blocked_lu


class TestCrossPrecisionMatgen:
    def test_sp_matrix_is_rounded_dp_matrix(self):
        dp = hpl_matrix(96)
        sp = hpl_matrix(96, dtype=np.float32)
        assert sp.dtype == np.float32
        assert np.array_equal(sp, dp.astype(np.float32))

    def test_sp_submatrix_agrees_with_rounded_global(self):
        rows = np.arange(1, 40, 3)
        cols = np.arange(0, 48, 2)
        full = hpl_matrix(48, dtype=np.float32)
        piece = hpl_submatrix(48, rows, cols, dtype=np.float32)
        assert np.array_equal(piece, full[np.ix_(rows, cols)])

    def test_sp_rhs_is_rounded_dp_rhs(self):
        _a, b_dp = hpl_system(64)
        _a, b_sp = hpl_system(64, dtype=np.float32)
        assert b_sp.dtype == np.float32
        assert np.array_equal(b_sp, b_dp.astype(np.float32))


class TestRefineToDouble:
    @pytest.fixture(scope="class")
    def system(self):
        a, b = hpl_system(128)
        lu_sp, ipiv = blocked_lu(a.astype(np.float32), nb=32)
        return a, b, lu_sp, ipiv

    def test_recovers_dp_accuracy_from_sp_factors(self, system):
        a, b, lu_sp, ipiv = system
        x, report = refine_to_double(a, b, lu_sp, ipiv)
        assert x.dtype == np.float64
        assert report.converged and not report.fallback
        assert 1 <= report.iterations <= report.max_iters
        assert residual_passes(a, x, b)  # the standard DP check
        # The SP solve alone would not have passed it.
        assert report.residuals[0] > report.residuals[-1]

    def test_residual_history_is_monotone_to_convergence(self, system):
        a, b, lu_sp, ipiv = system
        _x, report = refine_to_double(a, b, lu_sp, ipiv)
        assert report.residuals == sorted(report.residuals, reverse=True)
        assert report.residuals[-1] < report.tol

    def test_report_round_trips_to_dict(self, system):
        a, b, lu_sp, ipiv = system
        _x, report = refine_to_double(a, b, lu_sp, ipiv)
        doc = report.to_dict()
        assert doc["converged"] is True
        assert doc["iterations"] == report.iterations
        assert doc["sp_dtype"] == "float32"
        assert len(doc["residuals"]) == report.iterations + 1

    def test_rejects_dp_factors(self, system):
        a, b, _lu, ipiv = system
        lu_dp, ipiv_dp = blocked_lu(a.copy(), nb=32)
        with pytest.raises(ValueError, match="double precision"):
            refine_to_double(a, b, lu_dp, ipiv_dp)

    def test_validates_knobs(self, system):
        a, b, lu_sp, ipiv = system
        with pytest.raises(ValueError):
            refine_to_double(a, b, lu_sp, ipiv, tol=0.0)
        with pytest.raises(ValueError):
            refine_to_double(a, b, lu_sp, ipiv, max_iters=0)

    def test_stall_falls_back_to_full_dp(self):
        """Factors of the *wrong* matrix cannot reduce the residual, so
        refinement stalls and the full-DP fallback must still produce a
        passing solution."""
        a, b = hpl_system(96)
        other, _ = hpl_system(96, seed=7)
        bad_lu, bad_ipiv = blocked_lu(other.astype(np.float32), nb=32)
        x, report = refine_to_double(a, b, bad_lu, bad_ipiv, max_iters=3)
        assert report.fallback and not report.converged
        assert report.fallback_wall_s is not None
        assert residual_passes(a, x, b)

    def test_tighter_tol_takes_at_least_as_many_iterations(self):
        a, b = hpl_system(96)
        lu_sp, ipiv = blocked_lu(a.astype(np.float32), nb=32)
        _x, loose = refine_to_double(a, b, lu_sp, ipiv, tol=1.0)
        _x, tight = refine_to_double(a, b, lu_sp, ipiv, tol=1e-3)
        assert tight.iterations >= loose.iterations


class TestEpsParametricResidual:
    def test_pure_sp_judged_against_its_own_eps(self):
        a, b = hpl_system(96, dtype=np.float32)
        lu, ipiv = blocked_lu(a.copy(), nb=32)
        from repro.lu.factorize import lu_solve

        x = lu_solve(lu, ipiv, b)
        # Against DP eps the scaled residual is hopeless; against SP
        # eps the same solution is a clean pass.
        assert hpl_residual(a, x, b) > hpl_residual(
            a, x, b, eps_dtype=np.float32
        )
        assert residual_passes(a, x, b, eps_dtype=np.float32)


class TestRefineModel:
    def test_model_time_scales_with_iterations_and_n(self):
        base = refine_model_time_s(10000, 2)
        assert refine_model_time_s(10000, 4) > base
        assert refine_model_time_s(20000, 2) > base
        assert base > 0

    def test_expected_iterations_is_a_small_positive_count(self):
        k = expected_iterations(20000)
        assert 1 <= k <= 8


class TestDriversEndToEnd:
    def test_native_mxp_passes_dp_check_with_phase_timings(self):
        from repro.hpl.driver import NativeHPL

        res = NativeHPL(96, nb=32, workers=2, dtype="float32", mxp=True).run(
            numeric=True
        )
        assert res.passed and res.dtype == "float32"
        assert res.refine is not None and res.refine["converged"]
        assert res.refine_time_s is not None and res.refine_time_s >= 0
        assert res.factor_time_s is not None and res.factor_time_s > 0

    def test_hybrid_mxp_passes_dp_check(self):
        from repro.hybrid.functional import run_hybrid_numeric

        res = run_hybrid_numeric(64, nb=16, dtype="float32", mxp=True)
        assert res.passed and res.refine["converged"]
        assert res.refine_time_s is not None

    def test_distributed_mxp_passes_dp_check(self):
        from repro.cluster.hpl_mpi import DistributedHPL

        res = DistributedHPL(
            48, 8, 2, 2, dtype="float32", mxp=True
        ).run()
        assert res.passed and res.dtype == "float32"
        assert res.refine is not None and res.refine["converged"]
        assert res.refine_time_s is not None
        assert res.factor_time_s is not None and res.factor_time_s >= 0

    def test_pure_sp_native_reports_sp_pass(self):
        from repro.hpl.driver import NativeHPL

        res = NativeHPL(96, nb=32, dtype="float32").run(numeric=True)
        assert res.dtype == "float32"
        assert res.passed  # judged against float32 eps
        assert res.refine is None

    def test_mxp_requires_float32(self):
        from repro.hpl.driver import NativeHPL

        with pytest.raises(ValueError, match="float32"):
            NativeHPL(96, dtype="float64", mxp=True)


class TestSpecValidation:
    def test_refine_knobs_require_mxp(self):
        from repro.spec import RunSpec

        with pytest.raises(ValueError, match="mxp"):
            RunSpec(kind="native", n=2000, refine_tol=0.5)
        with pytest.raises(ValueError, match="mxp"):
            RunSpec(kind="native", n=2000, refine_max_iters=4)

    def test_mxp_requires_sp_dtype(self):
        from repro.spec import RunSpec

        with pytest.raises(ValueError, match="float32"):
            RunSpec(kind="native", n=2000, mxp=True)

    def test_mxp_normalizes_numeric_and_refine_defaults(self):
        from repro.spec import DEFAULT_REFINE_MAX_ITERS, DEFAULT_REFINE_TOL, RunSpec

        s = RunSpec(kind="native", n=2000, dtype="float32", mxp=True)
        norm = s.normalized()
        assert norm.numeric is True
        assert norm.refine_tol == DEFAULT_REFINE_TOL
        assert norm.refine_max_iters == DEFAULT_REFINE_MAX_ITERS

    def test_mxp_hybrid_collapses_grid_like_numeric(self):
        from repro.spec import RunSpec

        norm = RunSpec(
            kind="hybrid", n=2000, p=2, q=2, dtype="float32", mxp=True
        ).normalized()
        assert (norm.p, norm.q) == (1, 1)
        assert norm.nb == 64  # the numeric default, not the model's
