"""HPL pseudo-random generator: determinism, jumps, sub-blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpl.matgen import (
    LCG_ADD,
    LCG_MULT,
    hpl_matrix,
    hpl_submatrix,
    hpl_system,
    lcg_jump,
    lcg_stream,
)

_MASK = (1 << 64) - 1


def scalar_stream(seed, count):
    x = seed
    out = []
    for _ in range(count):
        x = (x * LCG_MULT + LCG_ADD) & _MASK
        out.append((x >> 11) / float(1 << 53) - 0.5)
    return np.array(out)


class TestLCG:
    def test_vectorised_matches_scalar_recurrence(self):
        np.testing.assert_array_equal(lcg_stream(987, 64), scalar_stream(987, 64))

    @given(st.integers(0, _MASK), st.integers(0, 200), st.integers(0, 200))
    @settings(max_examples=30)
    def test_jump_equals_iteration(self, seed, j1, j2):
        # Jumping j1+j2 equals jumping j1 then j2.
        assert lcg_jump(seed, j1 + j2) == lcg_jump(lcg_jump(seed, j1), j2)

    def test_jump_zero_is_identity(self):
        assert lcg_jump(1234, 0) == 1234

    def test_jump_matches_stream_tail(self):
        s = 5
        long = lcg_stream(s, 100)
        np.testing.assert_array_equal(lcg_stream(lcg_jump(s, 37), 63), long[37:])

    def test_negative_jump_raises(self):
        with pytest.raises(ValueError):
            lcg_jump(1, -1)

    def test_values_in_half_unit_interval(self):
        v = lcg_stream(99, 10000)
        assert v.min() >= -0.5 and v.max() < 0.5

    def test_roughly_uniform(self):
        v = lcg_stream(7, 50000)
        assert abs(v.mean()) < 0.01
        assert np.var(v) == pytest.approx(1 / 12, rel=0.05)

    def test_empty_stream(self):
        assert lcg_stream(1, 0).size == 0


class TestMatrix:
    def test_deterministic(self):
        np.testing.assert_array_equal(hpl_matrix(30, seed=3), hpl_matrix(30, seed=3))

    def test_seed_changes_matrix(self):
        assert not np.array_equal(hpl_matrix(30, seed=3), hpl_matrix(30, seed=4))

    def test_rectangular(self):
        a = hpl_matrix(10, seed=1, m=25)
        assert a.shape == (25, 10)

    def test_submatrix_agrees_with_global(self):
        n = 80
        a = hpl_matrix(n, seed=11)
        rows = np.array([0, 7, 33, 79])
        cols = np.array([2, 40, 78])
        np.testing.assert_array_equal(
            hpl_submatrix(n, rows, cols, seed=11), a[np.ix_(rows, cols)]
        )

    def test_submatrix_bounds_checked(self):
        with pytest.raises(IndexError):
            hpl_submatrix(10, np.array([10]), np.array([0]))
        with pytest.raises(IndexError):
            hpl_submatrix(10, np.array([0]), np.array([-1]))

    def test_system_b_independent_of_a_tail(self):
        a, b = hpl_system(20, seed=5)
        assert a.shape == (20, 20) and b.shape == (20,)
        # b continues the stream after the matrix.
        a2, b2 = hpl_system(20, seed=5)
        np.testing.assert_array_equal(b, b2)

    def test_matrix_is_well_conditioned_enough_to_solve(self):
        a, b = hpl_system(120, seed=42)
        x = np.linalg.solve(a, b)
        assert np.isfinite(x).all()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            hpl_matrix(0)
