"""Chrome-trace and JSONL export round-trips."""

import json

from repro.hpl import NativeHPL
from repro.sim import TraceRecorder


def _sample_trace() -> TraceRecorder:
    rec = TraceRecorder()
    rec.record("w0", "dgemm", 0.0, 1.0, info="s0p1", stage=0, panel=1)
    rec.record("w1", "dgetrf", 0.5, 2.0)
    rec.record("w0", "dlaswp", 1.0, 1.25, bytes=4096)
    return rec


class TestChromeTrace:
    def test_one_event_per_span(self):
        rec = _sample_trace()
        doc = rec.to_chrome_trace()
        assert len(doc["traceEvents"]) == len(rec.spans)

    def test_valid_json_and_required_fields(self):
        doc = _sample_trace().to_chrome_trace()
        text = json.dumps(doc)
        parsed = json.loads(text)
        for ev in parsed["traceEvents"]:
            assert ev["ph"] == "X"
            assert set(ev) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
            assert ev["dur"] >= 0

    def test_timestamps_monotone(self):
        doc = _sample_trace().to_chrome_trace()
        ts = [ev["ts"] for ev in doc["traceEvents"]]
        assert ts == sorted(ts)

    def test_microsecond_unit(self):
        doc = _sample_trace().to_chrome_trace()
        ev = next(e for e in doc["traceEvents"] if e["name"] == "dgemm")
        assert ev["ts"] == 0.0 and ev["dur"] == 1e6

    def test_structured_attrs_in_args(self):
        doc = _sample_trace().to_chrome_trace()
        ev = next(e for e in doc["traceEvents"] if e["name"] == "dgemm")
        assert ev["args"]["worker"] == "w0"
        assert ev["args"]["info"] == "s0p1"
        assert ev["args"]["stage"] == 0 and ev["args"]["panel"] == 1

    def test_write_chrome_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        rec = _sample_trace()
        rec.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == len(rec.spans)

    def test_real_run_trace_exports(self):
        r = NativeHPL(2000).run()
        doc = r.trace.to_chrome_trace()
        assert len(doc["traceEvents"]) == len(r.trace.spans)
        ts = [ev["ts"] for ev in doc["traceEvents"]]
        assert ts == sorted(ts)
        assert min(ts) >= 0.0


class TestJsonl:
    def test_round_trip(self):
        rec = _sample_trace()
        back = TraceRecorder.from_jsonl(rec.to_jsonl())
        assert back.spans == rec.spans

    def test_one_line_per_span(self):
        rec = _sample_trace()
        lines = rec.to_jsonl().splitlines()
        assert len(lines) == len(rec.spans)
        for line in lines:
            row = json.loads(line)
            assert {"worker", "kind", "start", "end"} <= set(row)

    def test_empty_trace(self):
        rec = TraceRecorder()
        assert rec.to_jsonl() == ""
        assert rec.to_chrome_trace()["traceEvents"] == []
        assert TraceRecorder.from_jsonl("").spans == []


class TestSpanAttrs:
    def test_attrs_dict_property(self):
        rec = TraceRecorder()
        span = rec.record("w", "k", 0.0, 1.0, stage=3, panel=5)
        assert span.attrs_dict == {"panel": 5, "stage": 3}

    def test_attrs_sorted_and_hashable(self):
        rec = TraceRecorder()
        s1 = rec.record("w", "k", 0.0, 1.0, b=2, a=1)
        s2 = rec.record("w", "k", 0.0, 1.0, a=1, b=2)
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_scheduler_spans_carry_stage_panel(self):
        r = NativeHPL(2000).run()
        tagged = [s for s in r.trace.spans if s.attrs]
        assert tagged, "dynamic scheduler spans should carry structured attrs"
        assert all(
            "stage" in s.attrs_dict and "panel" in s.attrs_dict for s in tagged
        )
