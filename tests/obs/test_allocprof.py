"""AllocProfiler: tracemalloc spans, per-phase counters, no-op mode."""

import numpy as np
import pytest

from repro.obs.allocprof import AllocProfiler, measure_temp_bytes
from repro.obs.metrics import MetricsRegistry


def churn(n=20_000):
    """Allocate-and-drop a visible temporary."""
    x = np.ones(n)
    return float((x * 2.0).sum())


def test_span_records_temporaries():
    with AllocProfiler() as prof:
        with prof.span("work"):
            churn()
    rec = prof.phases["work"]
    assert rec["calls"] == 1
    assert rec["temp_bytes"] >= 20_000 * 8
    assert rec["peak_temp_bytes"] == rec["temp_bytes"]


def test_spans_accumulate_per_phase():
    with AllocProfiler() as prof:
        for _ in range(3):
            with prof.span("work"):
                churn()
        with prof.span("other"):
            pass
    assert prof.phases["work"]["calls"] == 3
    assert prof.phases["other"]["calls"] == 1
    assert prof.temp_bytes("work") >= 3 * 20_000 * 8
    assert prof.temp_bytes("unseen") == 0


def test_retained_bytes_tracks_kept_allocations():
    keep = []
    with AllocProfiler() as prof:
        with prof.span("retain"):
            keep.append(np.ones(50_000))
    assert prof.phases["retain"]["retained_bytes"] >= 50_000 * 8
    del keep


def test_nested_spans_raise():
    with AllocProfiler() as prof:
        with pytest.raises(RuntimeError, match="nest"):
            with prof.span("outer"):
                with prof.span("inner"):
                    pass  # pragma: no cover


def test_disabled_profiler_is_noop():
    prof = AllocProfiler(enabled=False)
    with prof.span("work"):
        churn()
    assert prof.phases == {}
    assert prof.to_dict() is None
    prof.publish(MetricsRegistry())  # no-op, no error
    prof.close()


def test_to_dict_and_publish():
    with AllocProfiler() as prof:
        with prof.span("work"):
            churn()
    d = prof.to_dict()
    assert set(d) == {"work"}
    assert set(d["work"]) == {
        "calls",
        "temp_bytes",
        "peak_temp_bytes",
        "retained_bytes",
    }
    reg = MetricsRegistry()
    prof.publish(reg)
    snap = reg.to_dict()
    assert snap["counters"]["alloc.work.calls"] == 1
    assert snap["counters"]["alloc.work.temp_bytes"] == d["work"]["temp_bytes"]


def test_empty_profiler_to_dict_is_none():
    assert AllocProfiler().to_dict() is None


def test_measure_temp_bytes_returns_result_and_bytes():
    result, temp = measure_temp_bytes(churn, 10_000)
    assert result == float(np.ones(10_000).sum() * 2.0)
    assert temp >= 10_000 * 8


def test_measure_temp_bytes_allocation_free_callable_is_small():
    buf = np.empty(1000)

    def fill():
        buf[:] = 1.0

    _, temp = measure_temp_bytes(fill)
    assert temp < 2_000
