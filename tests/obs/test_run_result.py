"""Unified RunResult surface across the three driver families."""

import json

import pytest

from repro.cluster.hpl_mpi import DistributedHPL
from repro.hpl import NativeHPL
from repro.hybrid import HybridHPL
from repro.obs import MetricsRegistry, RunResult


@pytest.fixture(scope="module")
def native():
    return NativeHPL(2000).run()


@pytest.fixture(scope="module")
def hybrid():
    return HybridHPL(24000).run()


@pytest.fixture(scope="module")
def distributed():
    return DistributedHPL(48, 8, 2, 2).run()


def _schema_check(r, kind):
    assert isinstance(r, RunResult)
    assert r.kind == kind
    d = r.to_dict()
    assert d["kind"] == kind
    parsed = json.loads(r.to_json())
    assert parsed == json.loads(json.dumps(d))
    for name in ("time_s", "gflops", "efficiency"):
        assert name in d, f"{kind} result missing canonical field {name}"
        assert isinstance(d[name], (int, float))
    assert isinstance(d["metrics"], dict)
    assert set(d["metrics"]) == {"counters", "gauges", "timers", "distributions"}
    return d


class TestSchema:
    def test_native(self, native):
        d = _schema_check(native, "native")
        assert d["gflops"] > 0 and 0 < d["efficiency"] <= 1
        assert "trace" not in d  # traces export separately, not via to_dict

    def test_hybrid(self, hybrid):
        d = _schema_check(hybrid, "hybrid")
        assert d["gflops"] > 0 and 0 < d["efficiency"] <= 1

    def test_distributed(self, distributed):
        d = _schema_check(distributed, "distributed")
        assert d["time_s"] > 0 and d["gflops"] > 0
        assert d["passed"] is True

    def test_metrics_attached(self, native, hybrid, distributed):
        for r in (native, hybrid, distributed):
            assert isinstance(r.metrics, MetricsRegistry)
            assert len(r.metrics) > 0
            assert r.metric_rows() == r.metrics.flatten()

    def test_json_sorted_and_stable(self, native):
        assert native.to_json() == native.to_json()
        d = json.loads(native.to_json())
        assert list(d) == sorted(d)


class TestSummary:
    def test_summary_one_line(self, native, hybrid, distributed):
        for r in (native, hybrid, distributed):
            s = r.summary()
            assert isinstance(s, str) and "\n" not in s
            assert r.kind in s

    def test_native_summary_mentions_rate(self, native):
        assert "GFLOPS" in native.summary() or "TFLOPS" in native.summary()


class TestBackCompat:
    def test_hybrid_tflops_property(self, hybrid):
        assert hybrid.tflops == pytest.approx(hybrid.gflops / 1e3)

    def test_native_fields_unchanged(self, native):
        assert native.gflops == pytest.approx(
            native.tflops * 1e3 if hasattr(native, "tflops") else native.gflops
        )
        assert native.time_s > 0

    def test_distributed_legacy_fields_survive(self, distributed):
        # Pre-existing surface (lu, pivots, byte accounting) must still be there.
        assert distributed.lu is not None
        assert distributed.total_bytes > 0
        d = distributed.to_dict()
        assert "n" in d and "nb" in d
