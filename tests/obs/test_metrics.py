"""MetricsRegistry semantics and cross-run determinism."""

import json

import pytest

from repro.hpl import NativeHPL
from repro.obs import MetricsRegistry


class TestPrimitives:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_gauge_set_and_update_max(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.update_max(1)
        assert g.value == 3
        g.update_max(7)
        assert g.value == 7

    def test_timer_totals_and_mean(self):
        t = MetricsRegistry().timer("wait")
        t.add(0.5)
        t.add(1.5)
        assert t.total_s == pytest.approx(2.0)
        assert t.count == 2
        assert t.mean_s == pytest.approx(1.0)
        assert t.max_s == pytest.approx(1.5)

    def test_timer_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().timer("t").add(-0.1)

    def test_timer_context_manager_wall_clocks(self):
        t = MetricsRegistry().timer("wall")
        with t.time():
            pass
        assert t.count == 1
        assert t.total_s >= 0.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.timer("z") is reg.timer("z")
        assert len(reg) == 3
        assert "x" in reg and "nope" not in reg

    def test_to_dict_shape_and_sorted_keys(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(0.5)
        reg.timer("t").add(1.0)
        d = reg.to_dict()
        assert set(d) == {"counters", "gauges", "timers", "distributions"}
        assert list(d["counters"]) == ["a", "b"]
        assert d["timers"]["t"] == {
            "total_s": 1.0,
            "count": 1,
            "mean_s": 1.0,
            "max_s": 1.0,
        }

    def test_flatten_rows_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2)
        reg.timer("c").add(1.0)
        names = [n for n, _ in reg.flatten()]
        assert names == sorted(names)
        assert "c.total_s" in names and "c.count" in names


class TestDeterminism:
    def test_identical_seeded_runs_identical_metrics(self):
        r1 = NativeHPL(2000).run()
        r2 = NativeHPL(2000).run()
        assert r1.metrics is not None
        assert r1.metrics.to_dict() == r2.metrics.to_dict()
        assert json.dumps(r1.metrics.to_dict(), sort_keys=True) == json.dumps(
            r2.metrics.to_dict(), sort_keys=True
        )

    def test_engine_metrics_populated(self):
        r = NativeHPL(2000).run()
        d = r.metrics.to_dict()
        assert d["gauges"]["sim.events_processed"] > 0
        assert d["gauges"]["sim.queue_depth_hwm"] >= 1
        assert d["counters"]["sched.tasks"] > 0
        assert 0.0 <= d["gauges"]["sched.idle_fraction"] <= 1.0

    def test_lock_contention_metrics(self):
        r = NativeHPL(3000).run()
        d = r.metrics.to_dict()
        assert d["counters"]["sched.dag_lock.acquisitions"] > 0
        assert d["timers"]["sched.dag_lock.hold"]["total_s"] >= 0.0
