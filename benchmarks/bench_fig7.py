"""Figure 7 — Gantt chart of the LU execution profile for the 5K problem.

The paper's chart shows the static look-ahead schedule (7a) with large
exposed DGETRF and barrier regions, and the dynamic schedule (7b) with
those regions filled — the dynamic makespan is visibly shorter. The
benchmark renders both traces and checks the idle-time relationship.
"""

import numpy as np

from repro.hpl.driver import NativeHPL
from repro.report import render_gantt

from conftest import once

N = 5000


def build_fig7():
    static = NativeHPL(N, scheduler="static").run()
    dynamic = NativeHPL(N, scheduler="dynamic").run()
    return static, dynamic


def _mean_idle(result):
    trace = result.trace
    workers = [w for w in trace.workers() if w != "global"]
    return float(np.mean([trace.idle_fraction(w) for w in workers]))


def test_fig7(benchmark, emit):
    static, dynamic = once(benchmark, build_fig7)
    chart = "\n\n".join(
        [
            f"(a) static look-ahead — makespan {static.time_s:.3f}s",
            render_gantt(static.trace, width=96),
            f"(b) dynamic scheduling — makespan {dynamic.time_s:.3f}s",
            render_gantt(dynamic.trace, width=96),
        ]
    )
    emit("fig7", chart)
    # Dynamic is faster and its workers idle less.
    assert dynamic.time_s < static.time_s
    assert _mean_idle(dynamic) < _mean_idle(static)
    # Both traces contain all four kernel colours of the paper's legend.
    for result in (static, dynamic):
        kinds = set(result.trace.kinds())
        assert {"dgetrf", "dlaswp", "dtrsm", "dgemm"} <= kinds
    # The static trace shows explicit barriers (the white regions).
    assert "barrier" in static.trace.kinds()
