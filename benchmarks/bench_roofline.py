"""Ablation (Section III-A1) — the cache-blocking bandwidth analysis.

Regenerates the paper's example: m=120, n=32, k=240 demands ~1.1
bytes/cycle per core (~74 GB/s over 60 cores), well under the 150 GB/s
STREAM bandwidth; and shows how the demand scales with k and m.
"""

import pytest

from repro.blas.blocking import choose_blocking
from repro.machine import KNC
from repro.machine.roofline import (
    l2_block_bytes,
    required_bandwidth_bytes_per_cycle,
    required_bandwidth_gbs,
)
from repro.report import Table

from conftest import once


def build_roofline():
    t = Table(
        "Roofline: bandwidth demand of L2 blockings (amortised form)",
        ["m", "n", "k", "L2 KB", "B/cycle/core", "GB/s (60 cores)", "feasible"],
    )
    cases = [(120, 32, 120), (120, 32, 240), (120, 32, 300), (60, 32, 240), (240, 32, 240)]
    rows = {}
    for m, n, k in cases:
        bpc = required_bandwidth_bytes_per_cycle(m, n, k, amortize_a=True)
        gbs = required_bandwidth_gbs(m, n, k, KNC, cores=60, amortize_a=True)
        l2 = l2_block_bytes(m, n, k) / 1024
        t.add(m, n, k, round(l2, 1), round(bpc, 3), round(gbs, 1), gbs < KNC.stream_bw_gbs)
        rows[(m, n, k)] = (bpc, gbs, l2)
    return t, rows


def test_roofline(benchmark, emit):
    table, rows = once(benchmark, build_roofline)
    emit("roofline", table.render())
    bpc, gbs, _ = rows[(120, 32, 240)]
    assert bpc == pytest.approx(1.1, abs=0.05)
    assert gbs == pytest.approx(74, abs=4)
    assert gbs < KNC.stream_bw_gbs
    # Demand falls with deeper k and taller m.
    assert rows[(120, 32, 300)][0] < rows[(120, 32, 120)][0]
    assert rows[(240, 32, 240)][0] < rows[(60, 32, 240)][0]
    # The automatic chooser lands on the paper's preferred depth.
    choice = choose_blocking(KNC)
    assert choice.k == 300
    choice_sp = choose_blocking(KNC, elem_bytes=4)
    assert choice_sp.k == 400
