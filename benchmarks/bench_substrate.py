"""Functional-substrate ablation — tiles vs stripe vs parallel GEMM,
and the pack-once cache under blocked LU.

The paper's native DGEMM wins by (a) packing each operand panel once
per outer product and (b) fanning independent row-stripes across cores
(Section III-A). The functional layer mirrors both: ``strategy="stripe"``
batches all of a panel's tile kernels into one NumPy call per k-slice,
a :class:`~repro.parallel.TileExecutor` spreads the stripe grid over a
pool, and :class:`~repro.blas.workspace.PackCache` makes the blocked
LU pack each L21/U panel exactly once per stage.

Emits ``substrate.json`` with the measured rates plus the (exactly
deterministic) cache hit/miss counts. Set ``BENCH_SMOKE=1`` for the
reduced CI-smoke sizes; perf-ratio assertions only run at full size
(wall-clock ratios at smoke sizes are noise-dominated).
"""

import os
import time

import numpy as np

from repro.blas.gemm import gemm
from repro.blas.workspace import PackCache
from repro.lu.factorize import blocked_lu
from repro.parallel import TileExecutor
from repro.report import Table

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

N_GEMM = 384 if SMOKE else 1536
K_BLOCK = 300
N_LU = 192 if SMOKE else 480
NB_LU = 48 if SMOKE else 120


def _timed_gemm(a, b, **kwargs):
    t0 = time.perf_counter()
    c = gemm(a, b, **kwargs)
    dt = time.perf_counter() - t0
    return c, dt


def build_substrate():
    rng = np.random.default_rng(7)
    a = rng.standard_normal((N_GEMM, N_GEMM))
    b = rng.standard_normal((N_GEMM, N_GEMM))
    ref = a @ b
    flops = 2.0 * N_GEMM**3

    modes = {}
    c_tiles, t_tiles = _timed_gemm(a, b, k_block=K_BLOCK, strategy="tiles")
    modes["tiles"] = t_tiles
    c_stripe, t_stripe = _timed_gemm(a, b, k_block=K_BLOCK, strategy="stripe")
    modes["stripe"] = t_stripe
    with TileExecutor(2) as ex:
        c_par, t_par = _timed_gemm(
            a, b, k_block=K_BLOCK, strategy="stripe", executor=ex
        )
    modes["parallel(2)"] = t_par

    # All three partition the same tile grid: bitwise identical.
    assert np.array_equal(c_tiles, c_stripe)
    assert np.array_equal(c_stripe, c_par)
    # The emulated-kernel path agrees with NumPy to rounding.
    assert np.allclose(c_stripe, ref, rtol=1e-10, atol=1e-8)

    rows = [
        {
            "bench": "gemm",
            "mode": mode,
            "n": N_GEMM,
            "k_block": K_BLOCK,
            "time_s": dt,
            "gflops": flops / dt / 1e9,
        }
        for mode, dt in modes.items()
    ]

    # Pack-once accounting under blocked LU: per stage with t trailing
    # panels, L21 packs once and is reused t-1 times; each U block packs
    # once and dies. The counts are exact at any worker count.
    a_lu = rng.standard_normal((N_LU, N_LU))
    cache = PackCache()
    lu_serial, ipiv_serial = blocked_lu(a_lu.copy(), nb=NB_LU, pack_cache=cache)
    n_panels = (N_LU + NB_LU - 1) // NB_LU
    trailing = [n_panels - i - 1 for i in range(n_panels)]
    want_misses = sum(1 + t for t in trailing if t >= 1)
    want_hits = sum(t - 1 for t in trailing if t >= 1)
    assert cache.misses == want_misses, (cache.misses, want_misses)
    assert cache.hits == want_hits, (cache.hits, want_hits)
    assert len(cache) == 0  # every panel invalidated once dead

    with TileExecutor(2) as ex:
        lu_par, ipiv_par = blocked_lu(
            a_lu.copy(), nb=NB_LU, pack_cache=True, executor=ex, workers=ex
        )
    assert np.array_equal(lu_serial, lu_par)
    assert np.array_equal(ipiv_serial, ipiv_par)

    rows.append(
        {
            "bench": "blocked_lu.pack_cache",
            "n": N_LU,
            "nb": NB_LU,
            "hits": cache.hits,
            "misses": cache.misses,
            "stale_evictions": cache.stale_evictions,
            "hit_rate": cache.hits / max(1, cache.hits + cache.misses),
        }
    )

    t = Table(
        "Functional substrate: GEMM strategy ablation"
        + (" (smoke sizes)" if SMOKE else ""),
        ["bench", "config", "time s", "GFLOPS"],
    )
    for row in rows[:3]:
        t.add(row["bench"], row["mode"], round(row["time_s"], 4), round(row["gflops"], 2))
    t.add(
        "lu pack cache",
        f"n={N_LU} nb={NB_LU}",
        f"{cache.hits} hits",
        f"{cache.misses} misses",
    )
    return t, rows, modes


def test_substrate(benchmark, emit, emit_json):
    table, rows, modes = once(benchmark, build_substrate)
    emit("substrate", table.render())
    emit_json("substrate", rows)
    if not SMOKE:
        # The headline of the tentpole: one batched stripe GEMM per
        # k-slice beats per-tile kernel dispatch.
        assert modes["stripe"] < modes["tiles"], modes
