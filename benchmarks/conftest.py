"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the reproduced rows/series to ``benchmarks/out/<name>.txt`` (also
echoed to stdout when pytest runs with ``-s``), so paper-vs-measured
comparisons in EXPERIMENTS.md can be refreshed from these artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def emit():
    """Write (and print) a named benchmark artifact."""

    def _emit(name: str, text: str) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _emit


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
