"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the reproduced rows/series to ``benchmarks/out/<name>.txt`` (also
echoed to stdout when pytest runs with ``-s``), so paper-vs-measured
comparisons in EXPERIMENTS.md can be refreshed from these artifacts.
Benches that produce driver results additionally emit machine-readable
rows — serialized through ``RunResult.to_dict()`` — to
``benchmarks/out/<name>.json``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.obs import RunResult

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def emit():
    """Write (and print) a named benchmark artifact."""

    def _emit(name: str, text: str) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _emit


def _coerce(obj):
    """Recursively make benchmark rows JSON-safe, exporting any embedded
    RunResult through its to_dict()."""
    if isinstance(obj, RunResult):
        return obj.to_dict()
    if isinstance(obj, dict):
        return {str(k): _coerce(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_coerce(v) for v in obj]
    return obj


@pytest.fixture
def emit_json():
    """Write a named machine-readable artifact to ``out/<name>.json``."""

    def _emit(name: str, rows) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.json"
        path.write_text(json.dumps(_coerce(rows), indent=2, sort_keys=True) + "\n")
        print(f"[written to {path}]")
        return path

    return _emit


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
