"""Figure 4 — native DGEMM performance vs problem size.

Three series: Sandy Bridge EP (MKL, bottom, ~90% at large sizes),
Knights Corner outer-product kernel without packing (middle, 88% at 5K),
and Knights Corner DGEMM including packing (top curve gap: 15% overhead
at 1K shrinking below 0.4% past 17K).
"""

import pytest

from repro.machine import KNC, SNB
from repro.machine.gemm_model import (
    gemm_efficiency,
    gemm_gflops,
    packing_overhead,
    snb_dgemm_efficiency,
)
from repro.report import Table, render_chart

from conftest import once

SIZES = (1000, 2000, 5000, 8000, 11000, 14000, 17000, 20000, 24000, 28000)


def build_fig4():
    t = Table(
        "Figure 4: DGEMM GFLOPS vs matrix size (k=300)",
        ["N", "SNB MKL", "KNC kernel", "KNC packed", "pack overhead %"],
    )
    series = {}
    for n in SIZES:
        snb = snb_dgemm_efficiency(n) * SNB.peak_dp_gflops()
        kern = gemm_gflops(n, n, 300, KNC)
        packed = gemm_gflops(n, n, 300, KNC, include_packing=True)
        over = packing_overhead(n, n)
        t.add(n, round(snb), round(kern), round(packed), round(100 * over, 2))
        series[n] = (snb, kern, packed, over)
    return t, series


def test_fig4(benchmark, emit):
    table, series = once(benchmark, build_fig4)
    chart = render_chart(
        {
            "SNB MKL": [(n, series[n][0]) for n in SIZES],
            "KNC kernel": [(n, series[n][1]) for n in SIZES],
            "KNC packed": [(n, series[n][2]) for n in SIZES],
        },
        x_label="matrix size",
        y_label="GFLOPS",
    )
    emit("fig4", table.render() + "\n\n" + chart)
    # Kernel-only curve: 88% at 5K (Section III-B).
    assert gemm_efficiency(5000, 5000, 300) == pytest.approx(0.88, abs=0.01)
    # Packing overhead anchors.
    assert series[1000][3] == pytest.approx(0.15, abs=0.02)
    assert series[5000][3] <= 0.03
    assert series[17000][3] <= 0.008
    # KNC beats SNB everywhere from 2K up; gap grows with N.
    for n in SIZES[1:]:
        assert series[n][2] > series[n][0]
    # The top curve approaches the kernel curve at large sizes.
    assert series[28000][1] - series[28000][2] < 5.0
