"""Table I — system configurations of Sandy Bridge EP and Knights Corner.

Regenerates the configuration table from the machine models, verifying
the derived peak numbers against the paper's published values.
"""

import pytest

from repro.machine import KNC, SNB
from repro.report import Table

from conftest import once


def build_table1() -> Table:
    t = Table(
        "Table I: system configurations",
        ["parameter", "Sandy Bridge EP", "Knights Corner"],
    )
    t.add("sockets x cores x SMT", "2 x 8 x 2", "1 x 61 x 4")
    t.add("clock (GHz)", SNB.clock_ghz, KNC.clock_ghz)
    t.add("SP GFLOPS", round(SNB.peak_sp_gflops()), round(KNC.peak_sp_gflops()))
    t.add("DP GFLOPS", round(SNB.peak_dp_gflops()), round(KNC.peak_dp_gflops()))
    t.add("L1 / L2 (KB per core)", "32 / 256", "32 / 512")
    t.add("L3 (MB)", SNB.l3_bytes // 2**20, "-")
    t.add("DRAM (GB)", SNB.dram_bytes // 2**30, KNC.dram_bytes // 2**30)
    t.add("STREAM BW (GB/s)", SNB.stream_bw_gbs, KNC.stream_bw_gbs)
    t.add("PCIe BW (GB/s)", SNB.pcie_bw_gbs, KNC.pcie_bw_gbs)
    return t


def test_table1(benchmark, emit):
    table = once(benchmark, build_table1)
    emit("table1", table.render())
    assert KNC.peak_dp_gflops() == pytest.approx(1074, abs=1)
    assert SNB.peak_dp_gflops() == pytest.approx(333, abs=1)
    assert KNC.peak_sp_gflops() == pytest.approx(2148, abs=1)
    assert SNB.peak_sp_gflops() == pytest.approx(666, abs=1)
