"""Table II — SGEMM and DGEMM performance/efficiency as a function of k
(M = N = 28000).

Paper values: DGEMM peaks at 89.4% / 944 GFLOPS for k=300 then dips as
the L2 blocks spill; SGEMM rises monotonically to 90.8% / 1917 GFLOPS at
k=400.
"""

import pytest

from repro.machine.calibration import TABLE2_DGEMM, TABLE2_SGEMM
from repro.machine.gemm_model import dgemm_efficiency_vs_k, sgemm_efficiency_vs_k
from repro.report import Table

from conftest import once

KS = (120, 180, 240, 300, 340, 400)


def build_table2():
    d = dgemm_efficiency_vs_k(KS)
    s = sgemm_efficiency_vs_k(KS)
    t = Table(
        "Table II: GEMM efficiency vs k (M=N=28000)",
        [
            "k",
            "SGEMM eff (paper)",
            "SGEMM eff (model)",
            "SGEMM GFLOPS",
            "DGEMM eff (paper)",
            "DGEMM eff (model)",
            "DGEMM GFLOPS",
        ],
    )
    for k in KS:
        t.add(
            k,
            TABLE2_SGEMM[k],
            round(s[k][0], 4),
            round(s[k][1]),
            TABLE2_DGEMM[k],
            round(d[k][0], 4),
            round(d[k][1]),
        )
    return t, d, s


def test_table2(benchmark, emit):
    table, d, s = once(benchmark, build_table2)
    emit("table2", table.render())
    # Every entry within one efficiency point of the paper.
    for k in KS:
        assert d[k][0] == pytest.approx(TABLE2_DGEMM[k], abs=0.01)
        assert s[k][0] == pytest.approx(TABLE2_SGEMM[k], abs=0.01)
    # Who wins where: DGEMM peak at k=300, SGEMM at k=400.
    assert max(KS, key=lambda k: d[k][0]) == 300
    assert max(KS, key=lambda k: s[k][0]) == 400
    assert d[300][1] == pytest.approx(944, abs=5)
    assert s[400][1] == pytest.approx(1917, abs=15)
