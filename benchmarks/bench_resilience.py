"""Resilience overhead — what checkpoint/restart and the hardened
channel cost, and what a crash recovery buys back.

Two sections in the emitted artifact:

``model``
    Deterministic figures at a fixed reference geometry (n=4096,
    nb=128 on a 2x2 grid, NOT scaled in smoke mode — the gate compares
    these): for each checkpoint interval, the fraction of end-to-end
    time left for compute once panel-boundary checkpoint writes are
    paid (``model_checkpoint_efficiency``, bytes over a modeled
    storage link), and the fraction of completed work a rollback
    preserves when one rank crashes at a uniformly random stage
    (``model_recovery_efficiency``). These are the gated keys for
    ``tools/bench_compare.py`` — analytic only, never wall clock.

``measured``
    Real `DistributedHPL` runs on the simulated MPI world at smoke
    size: a fault-free baseline, a checkpoint-every-2 run (asserting
    the observed checkpoint time stays under 15% of end-to-end time),
    and a crash+restore run under an injected rank crash (asserting
    exactly one recovery and bitwise-identical lu/ipiv/x and residual
    versus the fault-free run). Wall-clock keys are informational; the
    correctness asserts are the machine-independent signal.

Set ``BENCH_SMOKE=1`` for the reduced CI sizes (n=96); the full run
uses n=384 on the same 2x2 grid.
"""

import os

import numpy as np

from repro.cluster.hpl_mpi import DistributedHPL
from repro.report import Table
from repro.resilience import RetryPolicy

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

N = 96 if SMOKE else 384
NB = 16 if SMOKE else 32
P = Q = 2
REPEATS = 3
CRASH_PLAN = "seed=5;crash:rank=3,stage=3"
RETRY = RetryPolicy(comm_timeout_s=0.5, max_retries=2)

# Fixed reference geometry + storage/compute constants for the analytic
# section (NOT scaled in smoke mode — the gate compares these).
MODEL_N, MODEL_NB, MODEL_P, MODEL_Q = 4096, 128, 2, 2
MODEL_CKPT_BW_GBS = 2.0  # NVMe-class checkpoint target
MODEL_RANK_GFLOPS = 100.0
INTERVALS = (1, 2, 4, 8)


def _model_rows():
    """Checkpoint-overhead and rollback-payoff fractions per interval.

    Each rank checkpoints its (n/p) x (n/q) local tiles every ``every``
    panel stages; writes cost bytes over the modeled storage link while
    the factorization costs 2/3 n^3 flops across the grid. A crash at a
    uniformly random stage rolls back (every - 1) / 2 stages on
    average, so larger intervals trade write overhead for redone work.
    """
    rows = []
    nstages = (MODEL_N + MODEL_NB - 1) // MODEL_NB
    ranks = MODEL_P * MODEL_Q
    local_bytes = (MODEL_N // MODEL_P) * (MODEL_N // MODEL_Q) * 8
    t_compute = (2.0 / 3.0) * MODEL_N**3 / ranks / (MODEL_RANK_GFLOPS * 1e9)
    t_write = local_bytes / (MODEL_CKPT_BW_GBS * 1e9)
    for every in INTERVALS:
        n_ckpt = nstages // every
        t_ckpt = n_ckpt * t_write
        rows.append(
            {
                "every": every,
                "n": MODEL_N,
                "nb": MODEL_NB,
                "grid": f"{MODEL_P}x{MODEL_Q}",
                "checkpoints": n_ckpt,
                "model_ckpt_s": t_ckpt,
                "model_checkpoint_efficiency": t_compute / (t_compute + t_ckpt),
                "model_recovery_efficiency": 1.0 - (every - 1) / (2.0 * nstages),
            }
        )
    return rows


def _best_run(**kwargs):
    """Min-of-REPEATS wall time; every repeat must pass the residual."""
    best = None
    for _ in range(REPEATS):
        r = DistributedHPL(N, NB, P, Q, **kwargs).run()
        assert r.passed
        if best is None or r.time_s < best.time_s:
            best = r
    return best


def _measured_rows():
    plain = _best_run()
    ckpt = _best_run(checkpoint_every=2)
    ckpt_s = ckpt.resilience["checkpoint_time_s"]
    # Satellite 6: panel-boundary checkpoints stay cheap at smoke size.
    assert ckpt_s < 0.15 * ckpt.time_s, (ckpt_s, ckpt.time_s)

    crash = _best_run(fault_plan=CRASH_PLAN, checkpoint_every=2, retry=RETRY)
    # One injected crash, one rollback recovery, bitwise-identical output.
    assert crash.resilience["recoveries"] == 1
    assert np.array_equal(crash.lu, plain.lu)
    assert np.array_equal(crash.ipiv, plain.ipiv)
    assert np.array_equal(crash.x, plain.x)
    assert crash.residual == plain.residual

    rows = []
    for mode, r in (("plain", plain), ("checkpoint", ckpt), ("crash+restore", crash)):
        res = r.resilience or {}
        rows.append(
            {
                "mode": mode,
                "n": N,
                "nb": NB,
                "p": P,
                "q": Q,
                "time_s": r.time_s,
                "overhead_vs_plain_pct": 100.0 * (r.time_s / plain.time_s - 1.0),
                "checkpoints": res.get("checkpoints", 0),
                "checkpoint_kb": res.get("checkpoint_bytes", 0) / 1e3,
                "checkpoint_s": res.get("checkpoint_time_s", 0.0),
                "recoveries": res.get("recoveries", 0),
                "restores": res.get("restores", 0),
            }
        )
    return rows


def build_resilience():
    model = _model_rows()
    measured = _measured_rows()
    table = Table(
        "Resilience: checkpoint overhead and crash recovery"
        + (" (smoke sizes)" if SMOKE else ""),
        ["config", "time s", "ckpts", "ckpt s", "recoveries", "vs plain"],
    )
    for row in measured:
        table.add(
            f"{row['mode']} n={row['n']}",
            round(row["time_s"], 3),
            row["checkpoints"],
            round(row["checkpoint_s"], 4),
            row["recoveries"],
            f"{row['overhead_vs_plain_pct']:+.1f}%",
        )
    for row in model:
        table.add(
            f"model every={row['every']} n={row['n']}",
            round(row["model_ckpt_s"], 3),
            row["checkpoints"],
            "-",
            "-",
            f"{100 * row['model_checkpoint_efficiency']:.0f}% compute",
        )
    return table, {"model": model, "measured": measured}


def test_resilience(benchmark, emit, emit_json):
    table, data = once(benchmark, build_resilience)
    emit("resilience", table.render())
    emit_json("resilience", data)
