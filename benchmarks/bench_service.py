"""Service-layer benchmark — cache fast path, single flight, throughput.

The serving tentpole claims three things worth gating:

``gated`` (gated keys)
    ``cache_hit_speedup`` — a warm submission of the cold anchor spec
    (hybrid model, n=84000) must answer at least two orders of
    magnitude faster than the cold run that populated the cache; the
    committed baseline pins the acceptance floor of 100x.
    ``cache_hit_efficiency`` / ``single_flight_efficiency`` are
    deterministic orchestration figures: every warm re-submission must
    be a cache hit (1.0), and a 16-way duplicate burst must execute
    once, coalescing the other 15 (15/16). ``requests_per_s`` and
    ``submit_p99_latency_s`` gate end-to-end front-door throughput and
    tail latency over a fan-out of distinct model runs, against
    deliberately conservative baselines (CI machines vary).

``measured`` (informational)
    Raw wall-clock figures behind the gated ratios — cold/warm submit
    times, burst and fan-out walls — which vary with the machine and
    stay out of the gate.

Set ``BENCH_SMOKE=1`` to reduce the warm-hit and fan-out counts; the
deterministic gated figures are unaffected.
"""

import asyncio
import os
import statistics
import time

from repro.report import Table
from repro.service import Service
from repro.spec import RunSpec

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

# The cold anchor: big enough that the model evaluation dominates the
# submit path (~tens of ms), so the hit/miss ratio is meaningful.
COLD_SPEC = RunSpec(kind="hybrid", n=84_000)
WARM_HITS = 8 if SMOKE else 32

BURST_SPEC = RunSpec(kind="hybrid", n=48_000)
BURST_WIDTH = 16  # fixed: the gated efficiency is 15/16 by construction

FANOUT = 16 if SMOKE else 32


def _strip(artifact):
    """The byte-identity view: everything but the serving annotations."""
    return {k: v for k, v in artifact.items() if k not in ("cached", "coalesced")}


async def _cache_section():
    """Cold run, then warm hits: speedup, hit efficiency, byte identity."""
    async with Service(use_processes=False, workers=2) as svc:
        t0 = time.perf_counter()
        cold = await svc.submit(COLD_SPEC)
        cold_s = time.perf_counter() - t0
        assert cold["status"] == "ok" and cold["cached"] is False

        warm_times = []
        for _ in range(WARM_HITS):
            t0 = time.perf_counter()
            warm = await svc.submit(COLD_SPEC)
            warm_times.append(time.perf_counter() - t0)
            assert warm["cached"] is True
            assert _strip(warm) == _strip(cold), "cache must serve bytes back"
        warm_p50 = statistics.median(warm_times)
        hits = svc.cache.stats()["hits_memory"] + svc.cache.stats()["hits_disk"]
    return {
        "cold_run_s": cold_s,
        "warm_hit_s": warm_p50,
        "cache_hit_speedup": cold_s / warm_p50,
        "cache_hit_efficiency": hits / WARM_HITS,
    }


async def _single_flight_section():
    """A 16-way duplicate burst must execute exactly once."""
    async with Service(use_processes=False, workers=2) as svc:
        t0 = time.perf_counter()
        artifacts = await asyncio.gather(
            *(svc.submit(BURST_SPEC) for _ in range(BURST_WIDTH))
        )
        wall = time.perf_counter() - t0
        stats = svc.cache.stats()
        assert all(a["status"] == "ok" for a in artifacts)
        assert stats["stores"] == 1, "duplicate burst must execute once"
        assert len({a["spec_hash"] for a in artifacts}) == 1
    return {
        "burst_width": BURST_WIDTH,
        "burst_wall_s": wall,
        "executions": stats["stores"],
        "single_flight_efficiency": svc.coalesced / BURST_WIDTH,
    }


async def _throughput_section():
    """Fan out distinct model runs through the full front door."""
    specs = [RunSpec(kind="hybrid", n=6_000 + 1_200 * i) for i in range(FANOUT)]
    async with Service(use_processes=False, workers=4) as svc:
        t0 = time.perf_counter()
        artifacts = await asyncio.gather(*(svc.submit(s) for s in specs))
        wall = time.perf_counter() - t0
        assert all(a["status"] == "ok" for a in artifacts)
        assert len({a["spec_hash"] for a in artifacts}) == FANOUT
        stats = svc.stats()
    return {
        "fanout": FANOUT,
        "fanout_wall_s": wall,
        "requests_per_s": FANOUT / wall,
        "submit_p99_latency_s": stats["latency"]["p99"],
        "batches": stats["batching"]["batches"],
        "batch_coalesced": stats["batching"]["coalesced"],
    }


def build_service():
    async def _run():
        return (
            await _cache_section(),
            await _single_flight_section(),
            await _throughput_section(),
        )

    cache, burst, throughput = asyncio.run(_run())
    data = {
        "gated": {
            "cache_hit_speedup": cache["cache_hit_speedup"],
            "cache_hit_efficiency": cache["cache_hit_efficiency"],
            "single_flight_efficiency": burst["single_flight_efficiency"],
            "requests_per_s": throughput["requests_per_s"],
            "submit_p99_latency_s": throughput["submit_p99_latency_s"],
        },
        "measured": {
            "cold_run_s": cache["cold_run_s"],
            "warm_hit_s": cache["warm_hit_s"],
            "burst_wall_s": burst["burst_wall_s"],
            "burst_executions": burst["executions"],
            "fanout_wall_s": throughput["fanout_wall_s"],
            "fanout_batches": throughput["batches"],
            "fanout_batch_coalesced": throughput["batch_coalesced"],
        },
    }

    table = Table(
        "Benchmark service (thread workers, hybrid model specs)",
        ["figure", "value"],
    )
    table.add("cold run (n=84000)", f"{cache['cold_run_s'] * 1e3:.2f} ms")
    table.add("warm hit (median)", f"{cache['warm_hit_s'] * 1e6:.0f} us")
    table.add("cache-hit speedup", f"{cache['cache_hit_speedup']:.0f}x")
    table.add("16-way burst executions", burst["executions"])
    table.add("fan-out requests/s", f"{throughput['requests_per_s']:.0f}")
    table.add("submit p99", f"{throughput['submit_p99_latency_s'] * 1e3:.2f} ms")
    return table, data


def test_service(benchmark, emit, emit_json):
    table, data = once(benchmark, build_service)
    gated = data["gated"]
    # The acceptance floor from the serving tentpole: a cache hit is at
    # least two orders of magnitude cheaper than the run it replaces.
    assert gated["cache_hit_speedup"] >= 100
    assert gated["cache_hit_efficiency"] == 1.0
    assert gated["single_flight_efficiency"] == (BURST_WIDTH - 1) / BURST_WIDTH
    assert data["measured"]["burst_executions"] == 1
    emit("service", str(table))
    emit_json("service", data)
