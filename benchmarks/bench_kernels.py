"""Ablation (Section III-A2) — Basic Kernel 1 vs Basic Kernel 2 under
the L1 port-conflict model.

The paper's argument: Kernel 1 has the higher theoretical efficiency
(31/32 = 96.9% vs 30/32 = 93.7%) but all 32 of its instructions touch
the L1 ports, so the two prefetch fills per iteration stall the core
(31/34 ~ 91%); Kernel 2's four register-swizzle "holes" absorb the fills
and win overall. With the port model disabled, Kernel 1 wins back.
"""

import pytest

from repro.machine.cache import L1PortModel
from repro.machine.kernel_model import (
    BASIC_KERNEL_1,
    BASIC_KERNEL_2,
    kernel_efficiency,
    stalled_efficiency_bound,
)
from repro.report import Table

from conftest import once

KS = (60, 120, 240, 300, 400)


def build_kernels():
    stalling = L1PortModel(stall_penalty=1)
    free = L1PortModel(stall_penalty=0)
    t = Table(
        "Kernel ablation: efficiency with/without L1 port conflicts",
        ["k", "K1 w/ ports", "K2 w/ ports", "K1 free L1", "K2 free L1"],
    )
    rows = {}
    for k in KS:
        vals = (
            kernel_efficiency(BASIC_KERNEL_1, k, stalling),
            kernel_efficiency(BASIC_KERNEL_2, k, stalling),
            kernel_efficiency(BASIC_KERNEL_1, k, free),
            kernel_efficiency(BASIC_KERNEL_2, k, free),
        )
        t.add(k, *[round(v, 4) for v in vals])
        rows[k] = vals
    return t, rows


def test_kernel_ablation(benchmark, emit, emit_json):
    table, rows = once(benchmark, build_kernels)
    emit("kernels_ablation", table.render())
    emit_json(
        "kernels_ablation",
        [
            {
                "k": k,
                "k1_ports_efficiency": rows[k][0],
                "k2_ports_efficiency": rows[k][1],
                "k1_free_efficiency": rows[k][2],
                "k2_free_efficiency": rows[k][3],
            }
            for k in KS
        ],
    )
    for k in KS:
        k1s, k2s, k1f, k2f = rows[k]
        assert k2s > k1s  # with port conflicts, Kernel 2 wins
        assert k1f > k2f  # without them, Kernel 1's extra vmadd wins
    # The paper's quick bounds.
    assert BASIC_KERNEL_1.theoretical_efficiency == pytest.approx(0.969, abs=0.001)
    assert BASIC_KERNEL_2.theoretical_efficiency == pytest.approx(0.937, abs=0.001)
    assert stalled_efficiency_bound(BASIC_KERNEL_1, 2) == pytest.approx(0.91, abs=0.005)
