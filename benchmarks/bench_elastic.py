"""Elastic world — what a mid-run grid reshape moves and what it costs.

Two sections in the emitted artifact:

``model``
    Deterministic figures at a fixed reference geometry (n=4096,
    nb=128, NOT scaled in smoke mode — the gate compares these): for
    each grid transition, the relayout planner's moved volume, the
    information-theoretic lower bound, their ratio
    (``redistribution_efficiency`` — the engine ships every
    owner-changed block exactly once, so it gates at 1.0), and the
    predicted redistribution time under the machine model's network
    (``model_regrid_s``, gated lower-is-better by the ``regrid``/
    ``_s`` rule in ``tools/bench_compare.py``). Analytic only, never
    wall clock.

``measured``
    Real elastic `DistributedHPL` runs on the simulated MPI world at
    smoke size: a grow (2x2 -> 2x4 at the regrid panel) and a shrink
    (2x4 -> 2x2), each asserted **bitwise-identical** (lu/ipiv/x and
    residual) to an uninterrupted run on the final grid, and each
    asserting the measured redistribution wall time stays under 15%
    of end-to-end time. Wall-clock keys (``time_s``,
    ``regrid_wall_fraction``) are informational; the bitwise asserts
    are the machine-independent signal.

Set ``BENCH_SMOKE=1`` for the reduced CI sizes (n=96); the full run
uses n=384.
"""

import os

import numpy as np

from repro.cluster.grid import ProcessGrid
from repro.cluster.hpl_mpi import DistributedHPL
from repro.elastic import plan_relayout, predict_time_s
from repro.report import Table

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

N = 96 if SMOKE else 384
NB = 16 if SMOKE else 32
REPEATS = 3
REGRID_PANEL = 3

# Fixed reference geometry for the analytic section (NOT scaled in
# smoke mode — the gate compares these).
MODEL_N, MODEL_NB = 4096, 128
MODEL_TRANSITIONS = (((2, 2), (2, 4)), ((2, 4), (2, 2)), ((2, 2), (1, 2)))


def _model_rows():
    """Planner volume, efficiency and predicted time per transition."""
    rows = []
    for (p0, q0), (p1, q1) in MODEL_TRANSITIONS:
        plan = plan_relayout(
            MODEL_N, MODEL_NB, ProcessGrid(p0, q0), ProcessGrid(p1, q1)
        )
        rows.append(
            {
                "transition": f"{p0}x{q0}->{p1}x{q1}",
                "n": MODEL_N,
                "nb": MODEL_NB,
                "moved_mb": plan.moved_bytes / 1e6,
                "lower_bound_mb": plan.lower_bound_bytes / 1e6,
                "redistribution_efficiency": plan.efficiency,
                "rank_pairs": len(plan.transfer_matrix),
                "model_regrid_s": predict_time_s(plan),
            }
        )
    return rows


def _repeat_runs(p, q, **kwargs):
    """REPEATS runs; every repeat must pass the residual."""
    runs = []
    for _ in range(REPEATS):
        r = DistributedHPL(N, NB, p, q, **kwargs).run()
        assert r.passed
        runs.append(r)
    return runs


def _best_run(p, q, **kwargs):
    """Min-of-REPEATS wall time."""
    return min(_repeat_runs(p, q, **kwargs), key=lambda r: r.time_s)


def _measured_rows():
    base_24 = _best_run(2, 4)
    base_22 = _best_run(2, 2)
    grows = _repeat_runs(2, 2, regrid=[f"panel={REGRID_PANEL}:2x4"])
    shrinks = _repeat_runs(2, 4, regrid=[f"panel={REGRID_PANEL}:2x2"])

    rows = []
    for mode, runs, base in (("grow 2x2->2x4", grows, base_24),
                             ("shrink 2x4->2x2", shrinks, base_22)):
        # The elastic invariant: a reshaped run is bitwise the
        # uninterrupted run on the final grid — on every repeat.
        for r in runs:
            assert r.regrids == 1
            assert np.array_equal(r.lu, base.lu)
            assert np.array_equal(r.ipiv, base.ipiv)
            assert np.array_equal(r.x, base.x)
            assert r.residual == base.residual
        best = min(runs, key=lambda r: r.time_s)
        # The reshape itself must stay a small slice of the run. Both
        # sides use min-of-repeats (the bench's de-noising policy):
        # thread-scheduling jitter on one sample is not a regression.
        regrid_wall = min(r.regrid_wall_s for r in runs)
        assert regrid_wall < 0.15 * best.time_s, (regrid_wall, best.time_s)
        rows.append(
            {
                "mode": mode,
                "n": N,
                "nb": NB,
                "time_s": best.time_s,
                "final_grid": f"{best.p}x{best.q}",
                "regrids": best.regrids,
                "regrid_moved_kb": best.regrid_moved_bytes / 1e3,
                "regrid_wall_fraction": regrid_wall / best.time_s,
                "vs_uninterrupted_pct": 100.0 * (best.time_s / base.time_s - 1.0),
            }
        )
    return rows


def build_elastic():
    model = _model_rows()
    measured = _measured_rows()
    table = Table(
        "Elastic regrid: redistribution volume and cost"
        + (" (smoke sizes)" if SMOKE else ""),
        ["config", "moved", "efficiency", "regrid s", "vs final grid"],
    )
    for row in measured:
        table.add(
            f"{row['mode']} n={row['n']}",
            f"{row['regrid_moved_kb']:.0f} kB",
            "-",
            f"{row['regrid_wall_fraction'] * 100:.1f}% of run",
            f"{row['vs_uninterrupted_pct']:+.1f}%",
        )
    for row in model:
        table.add(
            f"model {row['transition']} n={row['n']}",
            f"{row['moved_mb']:.1f} MB",
            f"{row['redistribution_efficiency']:.2f}",
            f"{row['model_regrid_s'] * 1e3:.2f} ms",
            "-",
        )
    return table, {"model": model, "measured": measured}


def test_elastic(benchmark, emit, emit_json):
    table, data = once(benchmark, build_elastic)
    emit("elastic", table.render())
    emit_json("elastic", data)
