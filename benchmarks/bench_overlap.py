"""Look-ahead overlap sweep — how much panel-broadcast time hides
behind the trailing update (Section IV).

Two sections in the emitted artifact:

``model``
    Deterministic figures from :func:`bcast_time_model` and the HPL
    operation count at a fixed reference geometry (n=2048, nb=128 on a
    4x4 grid): for each broadcast shape, the fraction of total
    broadcast time a perfect look-ahead could hide under the trailing
    DGEMM. These are the gated keys for ``tools/bench_compare.py`` —
    they depend only on the analytic models, never on wall clock, so
    the committed baseline is stable across machines and smoke/full
    modes.

``measured``
    Real `DistributedHPL` runs on the simulated MPI world —
    synchronous vs look-ahead, star vs ring-modified broadcast — with
    the overlap accounting (`comm.overlap.hidden_s` etc.) actually
    observed, plus the bitwise-identity check between the two
    schedules. Wall-clock noise stays out of the gate: these keys are
    informational. Note that in the thread-simulated world the
    "network" is memcpy on the host's own cores, so converting hidden
    time into wall-clock needs spare cores for the sender threads; on
    few-core hosts the machine-independent overlap signal is
    ``hidden_s > 0`` (asserted below), not the speedup column.

Set ``BENCH_SMOKE=1`` for the reduced CI sizes (n=256); the full run
uses n=2048 on a 2x2 grid, the ISSUE 3 acceptance geometry.
"""

import os

import numpy as np

from repro.cluster.bcast_algos import bcast_time_model
from repro.cluster.hpl_mpi import DistributedHPL
from repro.report import Table

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

N = 256 if SMOKE else 2048
NB = 64 if SMOKE else 128
P = Q = 2

# Fixed reference geometry + link/compute constants for the analytic
# section (NOT scaled in smoke mode — the gate compares these).
MODEL_N, MODEL_NB, MODEL_P, MODEL_Q = 2048, 128, 4, 4
MODEL_BW_GBS = 6.0  # PCIe/IB-class link
MODEL_LATENCY_S = 20e-6
MODEL_RANK_GFLOPS = 100.0
ALGOS = ("star", "ring", "binomial", "ring-mod")


def _model_rows():
    """Per-algorithm hideable fraction of the panel-broadcast time.

    Stage k broadcasts the factored panel (``(n - k0) x nb`` doubles)
    along each process row while the trailing update runs
    ``2 (n-k1)^2 nb`` flops split across the grid. A perfect look-ahead
    hides ``min(t_bcast, t_update)`` of every stage's broadcast.
    """
    rows = []
    nstages = (MODEL_N + MODEL_NB - 1) // MODEL_NB
    for algo in ALGOS:
        total_bc = 0.0
        hidden = 0.0
        for k in range(nstages - 1):
            k0 = k * MODEL_NB
            k1 = k0 + MODEL_NB
            nbytes = (MODEL_N - k0) * MODEL_NB * 8
            model_algo = "binomial" if algo == "star" else algo
            t_bc = bcast_time_model(
                nbytes, MODEL_Q, MODEL_BW_GBS, MODEL_LATENCY_S, model_algo
            )
            t_up = (
                2.0 * (MODEL_N - k1) ** 2 * MODEL_NB
                / (MODEL_P * MODEL_Q)
                / (MODEL_RANK_GFLOPS * 1e9)
            )
            total_bc += t_bc
            hidden += min(t_bc, t_up)
        rows.append(
            {
                "algo": algo,
                "n": MODEL_N,
                "nb": MODEL_NB,
                "grid": f"{MODEL_P}x{MODEL_Q}",
                "model_bcast_s": total_bc,
                "model_hiding_efficiency": hidden / total_bc,
            }
        )
    return rows


def _measured_rows():
    configs = [
        ("sync", "star", False),
        ("lookahead", "star", True),
        ("lookahead", "ring-mod", True),
    ]
    results = {}
    rows = []
    for mode, algo, la in configs:
        r = DistributedHPL(N, NB, P, Q, bcast_algo=algo, lookahead=la).run()
        assert r.passed
        results[(mode, algo)] = r
        rows.append(
            {
                "mode": mode,
                "bcast_algo": algo,
                "n": N,
                "nb": NB,
                "p": P,
                "q": Q,
                "time_s": r.time_s,
                "hidden_s": r.hidden_comm_s,
                "exposed_s": r.exposed_comm_s,
                "total_mb": r.total_bytes / 1e6,
            }
        )
    sync = results[("sync", "star")]
    for row, (mode, algo) in zip(rows, results):
        r = results[(mode, algo)]
        row["speedup_vs_sync_pct"] = 100.0 * (sync.time_s / r.time_s - 1.0)
        # The look-ahead schedule is a pure reordering of independent
        # work: bit-for-bit identical factorization and solve.
        assert np.array_equal(r.lu, sync.lu), (mode, algo)
        assert np.array_equal(r.ipiv, sync.ipiv), (mode, algo)
        assert np.array_equal(r.x, sync.x), (mode, algo)
        # The overlap must be real: background drain time that never
        # blocked compute is strictly positive under look-ahead.
        if mode == "lookahead":
            assert r.hidden_comm_s > 0.0, (mode, algo, r.hidden_comm_s)
    return rows


def build_overlap():
    model = _model_rows()
    measured = _measured_rows()
    table = Table(
        "Look-ahead overlap: panel broadcast hidden behind the update"
        + (" (smoke sizes)" if SMOKE else ""),
        ["config", "time s", "hidden s", "exposed s", "vs sync"],
    )
    for row in measured:
        table.add(
            f"{row['mode']}/{row['bcast_algo']} n={row['n']}",
            round(row["time_s"], 3),
            round(row["hidden_s"], 4),
            round(row["exposed_s"], 4),
            f"{row['speedup_vs_sync_pct']:+.1f}%",
        )
    for row in model:
        table.add(
            f"model {row['algo']} q={MODEL_Q}",
            round(row["model_bcast_s"], 4),
            "-",
            "-",
            f"{100 * row['model_hiding_efficiency']:.0f}% hideable",
        )
    return table, {"model": model, "measured": measured}


def test_overlap(benchmark, emit, emit_json):
    table, data = once(benchmark, build_overlap)
    emit("overlap", table.render())
    emit_json("overlap", data)
