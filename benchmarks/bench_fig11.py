"""Figure 11 — offload DGEMM performance for trailing-update matrices
(M = N, Kt = 1200), one and two coprocessors.

Paper anchors: single card ~917 GFLOPS (85.4%) at 82K with slow
degradation toward small sizes; dual card ~1785 GFLOPS (83%) with
noticeably faster degradation (each card only amortises half the tiles).
"""

import pytest

from repro.hybrid import OffloadDGEMM
from repro.report import Table, render_chart

from conftest import once

SIZES = (5000, 10000, 15000, 20000, 30000, 40000, 55000, 70000, 82000)


def build_fig11():
    t = Table(
        "Figure 11: offload DGEMM vs size (Kt=1200)",
        ["M=N", "1 card GFLOPS", "1 card eff", "2 cards GFLOPS", "2 cards eff"],
    )
    series = {}
    for m in SIZES:
        r1 = OffloadDGEMM(m, m).run()
        r2 = OffloadDGEMM(m, m, cards=2).run()
        t.add(m, round(r1.gflops), round(r1.efficiency, 3), round(r2.gflops), round(r2.efficiency, 3))
        series[m] = (r1, r2)
    return t, series


def test_fig11(benchmark, emit):
    table, series = once(benchmark, build_fig11)
    chart = render_chart(
        {
            "1 card": [(m, series[m][0].gflops) for m in SIZES],
            "2 cards": [(m, series[m][1].gflops) for m in SIZES],
        },
        x_label="M = N",
        y_label="GFLOPS",
    )
    emit("fig11", table.render() + "\n\n" + chart)
    r1, r2 = series[82000]
    assert r1.gflops == pytest.approx(917, abs=25)
    assert r1.efficiency == pytest.approx(0.854, abs=0.02)
    assert r2.gflops == pytest.approx(1785, abs=90)
    # Efficiency ordering and degradation shape.
    for m in SIZES:
        one, two = series[m]
        assert two.efficiency < one.efficiency
        assert two.gflops > one.gflops
    # Single card degrades slowly (still strong at 20K)...
    assert series[20000][0].efficiency > 0.78
    # ... dual card degrades faster (Figure 11b).
    drop1 = series[82000][0].efficiency - series[15000][0].efficiency
    drop2 = series[82000][1].efficiency - series[15000][1].efficiency
    assert drop2 > drop1
