"""Campaign-layer benchmark — orchestration throughput and cache hits.

The campaign tentpole claims three things worth gating:

``model`` (gated keys)
    A fixed nb x look-ahead sweep of the *deterministic* hybrid timing
    model at a fixed geometry (n=24000, 1x1, 1 card). The best
    configuration per cell (``model_best_gflops``) and the per-config
    scores depend only on the analytic models, never on wall clock, so
    the committed baseline is stable across machines and smoke/full
    modes. ``dedup_hit_efficiency`` (fraction of the expanded matrix
    the canonical-hash dedup eliminated) and ``cache_hit_efficiency``
    (fraction of unique runs a resumed re-invocation served from
    artifacts — must be 1.0) gate the orchestration behaviour itself:
    if dedup or resume break, these drop and the gate trips.

``measured`` (informational)
    Wall-clock orchestration throughput — expansion rate and end-to-end
    ``runs_per_s`` through ``run_campaign`` — which varies with the
    machine and stays out of the gate.

Set ``BENCH_SMOKE=1`` for the reduced measured-section fan-out; the
gated model section is never scaled.
"""

import os
import shutil
import tempfile
import time

from repro.campaign import CampaignSpec, expand_matrix, run_campaign
from repro.report import Table

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

# Fixed gated geometry (NOT scaled in smoke mode — the gate compares these).
MODEL_N = 24_000
MODEL_NB_AXIS = (600, 1200, 2400)
MODEL_LA_AXIS = ("basic", "pipelined")

# Measured-section fan-out (smoke keeps CI fast).
MEASURED_NB_AXIS = (600, 1200) if SMOKE else (300, 600, 1200, 2400)


def _model_campaign() -> CampaignSpec:
    """The gated sweep: 6 unique model runs plus 2 deliberate duplicates."""
    return CampaignSpec(
        name="bench-model",
        base={"kind": "hybrid", "n": MODEL_N},
        axes={"nb": list(MODEL_NB_AXIS), "lookahead": list(MODEL_LA_AXIS)},
        runs=(
            {"nb": 1200, "lookahead": "pipelined"},  # repeats an axis combo
            {"nb": 600, "lookahead": "basic"},       # repeats another
        ),
        workers=0,
        report_by=("n",),
    )


def build_campaign():
    out_dir = tempfile.mkdtemp(prefix="bench_campaign_")
    try:
        campaign = _model_campaign()
        specs, duplicates = expand_matrix(campaign)
        expanded = len(specs) + duplicates

        t0 = time.perf_counter()
        first = run_campaign(campaign, out_dir)
        first_elapsed = time.perf_counter() - t0

        t0 = time.perf_counter()
        second = run_campaign(campaign, out_dir)
        second_elapsed = time.perf_counter() - t0
        assert second.totals["executed"] == 0, "resume must serve the cache"
        assert second.cells == first.cells, "cached report must not drift"

        best = first.cells[0]
        data = {
            "model": {
                "n": MODEL_N,
                "unique_runs": len(specs),
                "duplicates_dropped": duplicates,
                "model_best_gflops": best["gflops"],
                "best_nb": best["best_spec"]["nb"],
                "best_lookahead": best["best_spec"]["lookahead"],
                "per_config": [
                    {
                        "nb": row["spec"]["nb"],
                        "lookahead": row["spec"]["lookahead"],
                        "model_gflops": row["gflops"],
                    }
                    for row in first.rows
                ],
                "dedup_hit_efficiency": duplicates / expanded,
                "cache_hit_efficiency":
                    second.totals["cached"] / second.totals["runs"],
            },
            "measured": _measured_section(),
            "first_run_s": first_elapsed,
            "resumed_run_s": second_elapsed,
            "runs_per_s": len(specs) / first_elapsed,
        }
    finally:
        shutil.rmtree(out_dir, ignore_errors=True)

    table = Table(
        "Campaign sweep (hybrid model, best per cell)",
        ["nb", "lookahead", "GFLOPS"],
    )
    for row in data["model"]["per_config"]:
        table.add(row["nb"], row["lookahead"], round(row["model_gflops"], 1))
    return table, data


def _measured_section():
    """Wall-clock orchestration throughput (never gated)."""
    campaign = CampaignSpec(
        name="bench-measured",
        base={"kind": "hybrid", "n": 12_000},
        axes={"nb": list(MEASURED_NB_AXIS)},
        workers=0,
    )
    out_dir = tempfile.mkdtemp(prefix="bench_campaign_measured_")
    try:
        t0 = time.perf_counter()
        report = run_campaign(campaign, out_dir)
        elapsed = time.perf_counter() - t0
    finally:
        shutil.rmtree(out_dir, ignore_errors=True)
    return {
        "fanout": len(MEASURED_NB_AXIS),
        "ok": report.totals["ok"],
        "wall_s": elapsed,
        "runs_per_s": report.totals["runs"] / elapsed,
    }


def test_campaign(benchmark, emit, emit_json):
    table, data = once(benchmark, build_campaign)
    assert data["model"]["cache_hit_efficiency"] == 1.0
    assert data["model"]["dedup_hit_efficiency"] > 0
    assert data["measured"]["ok"] == data["measured"]["fanout"]
    emit("campaign", str(table))
    emit_json("campaign", data)
