"""Ablation — hybrid HPL sensitivity to PCIe bandwidth.

The paper's conclusion names the limited PCIe bandwidth as the hybrid
design's first drawback: it forces NB >= ~1200, slowing the panel, and
exposes transfer time when violated. This sweep varies the effective
link bandwidth around the paper's ~4 GB/s and reports the single-node
efficiency and the Kt bound that bandwidth implies — quantifying how
much a faster interconnect (e.g. the PCIe 3.0 the next Phi generation
got) would have bought.
"""

import pytest

from repro.hybrid import HybridHPL
from repro.hybrid.tile_select import min_kt
from repro.machine.pcie import PCIeLink
from repro.report import Table

from conftest import once

BWS = (2.0, 3.0, 4.0, 6.0, 8.0, 12.0)
N = 84000


def build_sweep():
    t = Table(
        f"PCIe bandwidth sweep (single node, N={N}, NB=1200)",
        ["effective GB/s", "Kt bound", "TFLOPS", "efficiency %"],
    )
    rows = {}
    for bw in BWS:
        link = PCIeLink(peak_bw_gbs=max(6.0, bw), effective_bw_gbs=bw)
        r = HybridHPL(N, pcie_link=link).run()
        rows[bw] = r
        t.add(
            bw,
            round(min_kt(950.0, link)),
            round(r.tflops, 3),
            round(100 * r.efficiency, 1),
        )
    return t, rows


def test_pcie_sweep(benchmark, emit):
    table, rows = once(benchmark, build_sweep)
    emit("pcie_sweep", table.render())
    # Efficiency is monotone in link bandwidth ...
    effs = [rows[bw].efficiency for bw in BWS]
    assert effs == sorted(effs)
    # ... with diminishing returns once transfers hide under compute:
    # halving the paper's 4 GB/s costs more than doubling it gains.
    loss_down = rows[4.0].efficiency - rows[2.0].efficiency
    gain_up = rows[8.0].efficiency - rows[4.0].efficiency
    assert loss_down > gain_up
    # The Kt bound scales inversely with bandwidth (Kt > 4 P / BW).
    assert min_kt(950.0, PCIeLink(effective_bw_gbs=2.0)) == pytest.approx(
        2 * min_kt(950.0, PCIeLink(effective_bw_gbs=4.0))
    )
