"""Table III — achieved performance at node and cluster level for the
different Knights Corner / host-memory configurations.

All fifteen rows: the CPU-only baseline (MKL MP Linpack model), one and
two cards per node with and without the swapping pipeline at 1, 4 and
100 nodes, and the 128 GB-host row. The paper's headline: 107 TFLOPS at
76.1% efficiency on the 100-node cluster with pipelined look-ahead.
"""

import os

import pytest

from repro.hpl.driver import snb_hpl_efficiency
from repro.hybrid import HybridHPL, NodeConfig
from repro.machine import SNB
from repro.report import Table

from conftest import once

GB = 1024**3

#: (label, N, P, Q, cards, lookahead, host mem GB, paper TFLOPS, paper eff%)
ROWS = [
    ("Sandy Bridge EP only", 84_000, 1, 1, 0, None, 64, 0.29, 86.4),
    ("Sandy Bridge EP only", 168_000, 2, 2, 0, None, 64, 1.10, 82.8),
    ("no pipeline, 1 card", 84_000, 1, 1, 1, "basic", 64, 0.99, 71.0),
    ("pipeline, 1 card", 84_000, 1, 1, 1, "pipelined", 64, 1.12, 79.8),
    ("no pipeline, 1 card", 168_000, 2, 2, 1, "basic", 64, 3.88, 69.1),
    ("pipeline, 1 card", 168_000, 2, 2, 1, "pipelined", 64, 4.36, 77.6),
    ("no pipeline, 1 card", 825_000, 10, 10, 1, "basic", 64, 95.2, 67.7),
    ("pipeline, 1 card", 825_000, 10, 10, 1, "pipelined", 64, 107.0, 76.1),
    ("no pipeline, 2 cards", 84_000, 1, 1, 2, "basic", 64, 1.66, 68.2),
    ("pipeline, 2 cards", 84_000, 1, 1, 2, "pipelined", 64, 1.87, 76.6),
    ("no pipeline, 2 cards", 166_000, 2, 2, 2, "basic", 64, 6.36, 65.0),
    ("pipeline, 2 cards", 166_000, 2, 2, 2, "pipelined", 64, 7.15, 73.1),
    ("no pipeline, 2 cards", 822_000, 10, 10, 2, "basic", 64, 156.5, 64.0),
    ("pipeline, 2 cards", 822_000, 10, 10, 2, "pipelined", 64, 175.8, 71.9),
    ("pipeline, 1 card, 128GB", 242_000, 2, 2, 1, "pipelined", 128, 4.42, 79.6),
]

#: ``BENCH_SMOKE=1`` drops the cluster-scale rows (N >= 242K) so the CI
#: bench-smoke job finishes quickly; the reduced artifact is written
#: under its own name (``table3_smoke``) and gated against a committed
#: baseline by ``tools/bench_compare.py``. The model is deterministic,
#: so the smoke figures are exactly reproducible.
SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))
if SMOKE:
    ROWS = [row for row in ROWS if row[1] <= 168_000]


def snb_only(n: int, nodes: int) -> tuple:
    """The CPU-only rows from the MKL model (with the paper's ~4%
    multi-node degradation applied for P*Q > 1)."""
    eff = snb_hpl_efficiency(n if nodes == 1 else n // 2)
    if nodes > 1:
        eff *= 0.965
    tflops = eff * nodes * SNB.peak_dp_gflops() / 1e3
    return tflops, eff


def build_table3():
    t = Table(
        "Table III: node- and cluster-level HPL",
        ["system", "N", "P", "Q", "TFLOPS", "eff %", "paper TFLOPS", "paper eff %"],
    )
    measured = []
    rows = []
    for label, n, p, q, cards, la, mem, p_tf, p_eff in ROWS:
        row = {"label": label, "n": n, "p": p, "q": q, "cards": cards,
               "lookahead": la, "paper_tflops": p_tf, "paper_eff_pct": p_eff}
        if cards == 0:
            tflops, eff = snb_only(n, p * q)
            row["tflops"], row["efficiency"] = tflops, eff
        else:
            node = NodeConfig(cards=cards, host_mem_bytes=mem * GB)
            r = HybridHPL(n, node=node, p=p, q=q, lookahead=la).run()
            tflops, eff = r.tflops, r.efficiency
            row["result"] = r
        label_full = f"{label}"
        t.add(label_full, f"{n // 1000}K", p, q, round(tflops, 2), round(100 * eff, 1), p_tf, p_eff)
        measured.append((label, n, p, q, cards, la, tflops, eff, p_tf, p_eff))
        rows.append(row)
    return t, measured, rows


def test_table3(benchmark, emit, emit_json):
    table, measured, rows = once(benchmark, build_table3)
    name = "table3_smoke" if SMOKE else "table3"
    emit(name, table.render())
    emit_json(name, rows)

    by_key = {(n, p, q, cards, la): (tf, eff) for (label, n, p, q, cards, la, tf, eff, *_ ) in measured}

    if not SMOKE:
        # Headline: 100 nodes, pipelined, 1 card — ~107 TFLOPS at ~76%.
        tf, eff = by_key[(825_000, 10, 10, 1, "pipelined")]
        assert tf == pytest.approx(107.0, rel=0.05)
        assert eff == pytest.approx(0.761, abs=0.02)

    # Every efficiency within 4.5 points of the paper's value, and every
    # TFLOPS within 10%.
    for label, n, p, q, cards, la, tflops, eff, p_tf, p_eff in measured:
        assert eff * 100 == pytest.approx(p_eff, abs=4.5), (label, n)
        assert tflops == pytest.approx(p_tf, rel=0.12), (label, n)

    # Structural claims: pipeline beats no-pipeline everywhere ...
    for n, p, q, cards in [
        (84_000, 1, 1, 1),
        (168_000, 2, 2, 1),
        (825_000, 10, 10, 1),
        (84_000, 1, 1, 2),
    ]:
        if (n, p, q, cards, "pipelined") in by_key:
            assert by_key[(n, p, q, cards, "pipelined")][1] > by_key[(n, p, q, cards, "basic")][1]
    # ... the second card adds TFLOPS but costs efficiency ...
    assert by_key[(84_000, 1, 1, 2, "pipelined")][0] > by_key[(84_000, 1, 1, 1, "pipelined")][0]
    assert by_key[(84_000, 1, 1, 2, "pipelined")][1] < by_key[(84_000, 1, 1, 1, "pipelined")][1]
    if not SMOKE:
        # ... and more host memory lifts cluster efficiency (the 128 GB row).
        assert by_key[(242_000, 2, 2, 1, "pipelined")][1] > by_key[(168_000, 2, 2, 1, "pipelined")][1]
