"""Ablation — panel-broadcast algorithm choice on the cluster stages.

Reference HPL exposes several broadcast variants because the right one
depends on message size and grid shape. The cost models show where each
wins for the paper's stage geometry (panel of N_loc x 1200 doubles over
a 10-wide process row on FDR IB).
"""

import pytest

from repro.cluster.bcast_algos import bcast_time_model
from repro.report import Table

from conftest import once

BW, LAT = 6.0, 2e-6
ALGOS = ("ring", "binomial", "segmented-ring")


def build_bcast():
    t = Table(
        "Broadcast cost models (10-wide process row, FDR IB)",
        ["payload", "ring (ms)", "binomial (ms)", "segmented-ring (ms)", "winner"],
    )
    rows = {}
    for label, nbytes in [
        ("1 KB (pivots)", 1024),
        ("100 KB", 1e5),
        ("8 MB (late panel)", 8e6),
        ("790 MB (early panel)", 8 * 82500 * 1200),
    ]:
        times = {a: bcast_time_model(nbytes, 10, BW, LAT, a, segments=8) for a in ALGOS}
        winner = min(times, key=times.get)
        t.add(label, *[round(1e3 * times[a], 4) for a in ALGOS], winner)
        rows[label] = (times, winner)
    return t, rows


def test_bcast_models(benchmark, emit):
    table, rows = once(benchmark, build_bcast)
    emit("bcast_ablation", table.render())
    # Small messages: latency-optimal binomial tree wins.
    assert rows["1 KB (pivots)"][1] == "binomial"
    # Large panels: the segmented ring's bandwidth optimality wins.
    assert rows["790 MB (early panel)"][1] == "segmented-ring"
    # The plain ring is never catastrophic for big payloads but loses the
    # latency game badly.
    small = rows["1 KB (pivots)"][0]
    assert small["ring"] > 2 * small["binomial"]
