"""Figure 8 — the three hybrid HPL orchestration schemes.

The figure is schematic (no numbers): it contrasts no look-ahead, basic
look-ahead and pipelined look-ahead. The benchmark quantifies the
schematic on a single node at N=42K: total time, card idle fraction, and
the strict ordering none < basic < pipelined.
"""

import pytest

from repro.hybrid import HybridHPL
from repro.report import Table, render_gantt

from conftest import once

N = 42000


def build_fig8():
    results = {}
    for scheme in ("none", "basic", "pipelined"):
        results[scheme] = HybridHPL(N, lookahead=scheme).run()
    return results


def test_fig8(benchmark, emit):
    results = once(benchmark, build_fig8)
    t = Table(
        f"Figure 8: hybrid schemes at N={N}, single node, one card",
        ["scheme", "time (s)", "TFLOPS", "efficiency", "KNC idle %"],
    )
    for scheme, r in results.items():
        t.add(
            scheme,
            round(r.time_s, 1),
            round(r.tflops, 3),
            round(r.efficiency, 3),
            round(100 * r.knc_idle_fraction, 1),
        )
    first_stages = render_gantt(results["pipelined"].trace, width=96, workers=["host", "knc"])
    emit("fig8", t.render() + "\n\npipelined-scheme trace (full run):\n" + first_stages)
    none, basic, pipe = (results[s] for s in ("none", "basic", "pipelined"))
    assert none.tflops < basic.tflops < pipe.tflops
    assert none.knc_idle_fraction > basic.knc_idle_fraction > pipe.knc_idle_fraction
    # No look-ahead leaves the card idle through panel + swap + DTRSM.
    assert none.knc_idle_fraction > 0.15
    assert pipe.knc_idle_fraction < 0.05
