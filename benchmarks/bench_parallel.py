"""Parallel-substrate ablation — batched emulation and descriptor pipes.

Two claims from the shared-memory executor tentpole are measured here.
First, the batched vector-ISA emulator collapses the per-instruction
Python dispatch loop into ``k`` NumPy sweeps per tile batch: the same
bitwise results with orders of magnitude fewer interpreter round trips.
Second, the :class:`~repro.parallel.ProcessTileExecutor` ships only
descriptors over its pipes — the operand matrices live in the
:class:`~repro.parallel.SharedArena` and never cross a connection.

Emits ``parallel.json``. The gated keys are deterministic accounting,
not wall-clock, so they reproduce exactly on any machine:
``dispatch_collapse_efficiency`` is the fraction of the per-instruction
path's Python dispatches the batched schedule eliminates (computed from
the analytic instruction census), and ``zero_copy_efficiency`` is the
fraction of the GEMM operand bytes that stayed out of the pipes. Wall
timings (``*_s``, ``speedup``) ride along informationally — this runs
on whatever CPU CI hands us, so process-pool timings prove nothing —
but the headline assertion is runtime: the batched emulator must beat
per-instruction dispatch by at least 3x even on a cold interpreter.
Set ``BENCH_SMOKE=1`` for the reduced CI sizes.
"""

import os
import time

import numpy as np

from repro.blas.gemm import gemm
from repro.blas.kernels import basic_kernel_1, batched_kernel_1
from repro.machine.vector_batch import schedule_for
from repro.parallel import ProcessTileExecutor, TileExecutor
from repro.report import Table

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

#: Emulator workload: T tiles of (k x 31) @ (k x 8) rank-k products.
TILES = 8 if SMOKE else 32
K = 32 if SMOKE else 64
SEED = 11

#: Process-GEMM workload (kept modest: correctness plumbing, not FLOPS).
GEMM_M = 256 if SMOKE else 512
GEMM_K = 192 if SMOKE else 384
GEMM_N = 160 if SMOKE else 320
WORKERS = 2


def _emulator_ablation():
    rng = np.random.default_rng(SEED)
    a = rng.standard_normal((TILES, K, 31))
    b = rng.standard_normal((TILES, K, 8))

    t0 = time.perf_counter()
    stepped = np.stack([basic_kernel_1(a[t], b[t]) for t in range(TILES)])
    stepped_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = batched_kernel_1(a, b)
    batched_s = time.perf_counter() - t0

    # Same bits or the speedup is meaningless.
    assert np.array_equal(stepped, batched)

    census = schedule_for(31).census(K, n_tiles=TILES)
    # One Python call per emulated instruction (prefetches included)
    # versus one NumPy sweep per k iteration for the whole batch.
    stepped_dispatches = census.vector_total + census.prefetch
    batched_sweeps = K
    collapse = 1.0 - batched_sweeps / stepped_dispatches
    return {
        "stepped_s": stepped_s,
        "batched_s": batched_s,
        "speedup": stepped_s / batched_s,
        "stepped_dispatches": stepped_dispatches,
        "batched_sweeps": batched_sweeps,
        "dispatch_collapse_efficiency": collapse,
    }


def _pipe_economy():
    rng = np.random.default_rng(SEED + 1)
    a = rng.standard_normal((GEMM_M, GEMM_K))
    b = rng.standard_normal((GEMM_K, GEMM_N))
    c0 = rng.standard_normal((GEMM_M, GEMM_N))
    operand_bytes = a.nbytes + b.nbytes + c0.nbytes

    t0 = time.perf_counter()
    ref = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0)
    serial_s = time.perf_counter() - t0

    with TileExecutor(WORKERS) as tex:
        t0 = time.perf_counter()
        thread = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0, executor=tex)
        thread_s = time.perf_counter() - t0

    with ProcessTileExecutor(workers=WORKERS) as pex:
        t0 = time.perf_counter()
        proc = gemm(a, b, c0.copy(), alpha=-1.0, beta=1.0, executor=pex)
        process_s = time.perf_counter() - t0
        pipe_bytes = pex.pipe_task_bytes
        messages = pex.pipe_messages
        max_message = pex.pipe_max_message_bytes
        leaked = pex.arena.active

    assert np.array_equal(ref, thread)
    assert np.array_equal(ref, proc)
    assert leaked == 0

    return {
        "operand_mbytes": operand_bytes / 1e6,
        "pipe_task_bytes": pipe_bytes,
        "pipe_messages": messages,
        "pipe_max_message_bytes": max_message,
        "zero_copy_efficiency": 1.0 - pipe_bytes / operand_bytes,
        "serial_s": serial_s,
        "thread_s": thread_s,
        "process_s": process_s,
    }


def build_parallel():
    emu = _emulator_ablation()
    pipe = _pipe_economy()
    rows = [
        {"bench": "emulator", "mode": "stepped", "tiles": TILES, "k": K,
         "dispatches": emu["stepped_dispatches"], "wall_s": emu["stepped_s"]},
        {"bench": "emulator", "mode": "batched", "tiles": TILES, "k": K,
         "dispatches": emu["batched_sweeps"], "wall_s": emu["batched_s"],
         "speedup": emu["speedup"],
         "dispatch_collapse_efficiency": emu["dispatch_collapse_efficiency"]},
        {"bench": "gemm.pipe", "mode": "process",
         "m": GEMM_M, "k": GEMM_K, "n": GEMM_N, "workers": WORKERS,
         "operand_mbytes": pipe["operand_mbytes"],
         "pipe_task_bytes": pipe["pipe_task_bytes"],
         "pipe_messages": pipe["pipe_messages"],
         "pipe_max_message_bytes": pipe["pipe_max_message_bytes"],
         "zero_copy_efficiency": pipe["zero_copy_efficiency"],
         "serial_s": pipe["serial_s"], "thread_s": pipe["thread_s"],
         "process_s": pipe["process_s"]},
    ]

    t = Table(
        "Parallel substrate: dispatch collapse and pipe economy"
        + (" (smoke sizes)" if SMOKE else ""),
        ["bench", "mode", "dispatches/bytes", "wall s", "efficiency"],
    )
    t.add("emulator", "stepped", emu["stepped_dispatches"],
          round(emu["stepped_s"], 4), "")
    t.add("emulator", "batched", emu["batched_sweeps"],
          round(emu["batched_s"], 4),
          round(emu["dispatch_collapse_efficiency"], 6))
    t.add("gemm.pipe", "process", pipe["pipe_task_bytes"],
          round(pipe["process_s"], 4),
          round(pipe["zero_copy_efficiency"], 6))
    return t, rows, emu["speedup"]


def test_parallel(benchmark, emit, emit_json):
    table, rows, speedup = once(benchmark, build_parallel)
    emit("parallel", table.render())
    emit_json("parallel", rows)
    # The batched schedule's acceptance bar: at least 3x over the
    # per-instruction emulator (typically two orders of magnitude).
    assert speedup >= 3.0, rows
