"""Figure 6 — native Linpack performance vs problem size.

Three series: Sandy Bridge EP MKL SMP Linpack (277 GFLOPS / 83% at 30K),
Knights Corner with static look-ahead, and with dynamic scheduling.
Dynamic wins below ~8K; the two converge toward 832 GFLOPS (~79%) at 30K.
"""

import pytest

from repro.hpl.driver import NativeHPL, snb_hpl_gflops
from repro.report import Table, render_chart

from conftest import once

SIZES = (1000, 2000, 5000, 8000, 12000, 16000, 20000, 25000, 30000)


def build_fig6():
    t = Table(
        "Figure 6: native Linpack GFLOPS vs N",
        ["N", "SNB MKL", "KNC static", "KNC dynamic", "dyn eff"],
    )
    series = {}
    rows = []
    for n in SIZES:
        snb = snb_hpl_gflops(n)
        sta = NativeHPL(n, scheduler="static").run()
        dyn = NativeHPL(n, scheduler="dynamic").run()
        t.add(n, round(snb), round(sta.gflops), round(dyn.gflops), round(dyn.efficiency, 3))
        series[n] = (snb, sta.gflops, dyn.gflops)
        rows.append({"n": n, "snb_gflops": snb, "static": sta, "dynamic": dyn})
    return t, series, rows


def test_fig6(benchmark, emit, emit_json):
    table, series, rows = once(benchmark, build_fig6)
    emit_json("fig6", rows)
    chart = render_chart(
        {
            "SNB MKL": [(n, series[n][0]) for n in SIZES],
            "KNC static": [(n, series[n][1]) for n in SIZES],
            "KNC dynamic": [(n, series[n][2]) for n in SIZES],
        },
        x_label="N",
        y_label="GFLOPS",
    )
    emit("fig6", table.render() + "\n\n" + chart)
    # 30K anchors: SNB 277 / 83%, KNC ~832 / ~79%.
    assert series[30000][0] == pytest.approx(277, abs=3)
    assert series[30000][2] == pytest.approx(832, abs=25)
    # Dynamic beats static at every size; the relative gap shrinks.
    for n in SIZES:
        assert series[n][2] >= series[n][1]
    gap_5k = series[5000][2] / series[5000][1]
    gap_30k = series[30000][2] / series[30000][1]
    assert gap_5k > gap_30k
    assert gap_30k < 1.10  # near-convergence at 30K
    # The KNC dynamic curve crosses SNB between 2K and 5K.
    assert series[2000][2] < 2.2 * series[2000][0]
    assert series[5000][2] > series[5000][0]
