"""Ablations (Section IV-A) — the two dynamic-scheduler design choices.

1. **Master-thread critical section**: only one thread per group touches
   the DAG lock. The ablation restores the original all-threads scheme
   and measures the contention cost at Knights Corner thread counts.
2. **Super-stage regrouping**: later stages get fewer, wider groups so
   the panel stays hidden. The ablation pins the initial grouping for
   the whole factorization.
"""

import pytest

from repro.lu.dynamic import DynamicScheduler, SuperStage, _split_cores
from repro.report import Table

from conftest import once

N, NB = 12000, 300


def build_ablation():
    t = Table(
        f"Dynamic-scheduler ablations at N={N}",
        ["variant", "GFLOPS", "efficiency", "lock wait (us)"],
    )
    base = DynamicScheduler(N, nb=NB).run()
    contended = DynamicScheduler(N, nb=NB, master_only_lock=False).run()
    n_panels = -(-N // NB)
    frozen_plan = [SuperStage(0, n_panels, _split_cores(60, 20))]
    frozen = DynamicScheduler(N, nb=NB, superstages=frozen_plan).run()
    rows = {"base": base, "all-threads lock": contended, "no regrouping": frozen}
    for name, r in rows.items():
        t.add(name, round(r.gflops), round(r.efficiency, 3), round(r.lock_mean_wait_s * 1e6, 2))
    return t, rows


def test_scheduler_ablation(benchmark, emit):
    table, rows = once(benchmark, build_ablation)
    emit("scheduler_ablation", table.render())
    base, contended, frozen = (
        rows["base"],
        rows["all-threads lock"],
        rows["no regrouping"],
    )
    # All-threads contention costs throughput and raises lock waits —
    # "it limits scalability on many-core architectures".
    assert contended.gflops <= base.gflops
    assert contended.lock_mean_wait_s >= base.lock_mean_wait_s
    # Freezing the grouping exposes panels at the tail.
    assert frozen.gflops < base.gflops
    # Both ablations stay functional: every task still executed.
    assert base.tasks_executed == contended.tasks_executed == frozen.tasks_executed
