"""Figure 9 — execution profile of multi-node (2x2) hybrid HPL at N=84K
with and without the swapping pipeline.

Paper claims: with basic look-ahead the card is idle at least 13% of the
time (U broadcast + swapping + DTRSM exposed); the pipeline cuts that
below ~3%; per-iteration time drops by up to ~11% in the early,
most expensive iterations (Figure 9c, two cards).
"""

import pytest

from repro.hybrid import HybridHPL, NodeConfig
from repro.report import Table, render_stacked_profile

from conftest import once

N, P, Q = 84000, 2, 2


def build_fig9():
    basic = HybridHPL(N, p=P, q=Q, lookahead="basic").run()
    pipe = HybridHPL(N, p=P, q=Q, lookahead="pipelined").run()
    node2 = NodeConfig(cards=2)
    basic2 = HybridHPL(N, p=P, q=Q, node=node2, lookahead="basic").run()
    pipe2 = HybridHPL(N, p=P, q=Q, node=node2, lookahead="pipelined").run()
    return basic, pipe, basic2, pipe2


def test_fig9(benchmark, emit):
    basic, pipe, basic2, pipe2 = once(benchmark, build_fig9)
    t = Table(
        f"Figure 9: 2x2 hybrid HPL at N={N}",
        ["variant", "time (s)", "TFLOPS", "KNC idle %"],
    )
    for name, r in [
        ("basic, 1 card", basic),
        ("pipelined, 1 card", pipe),
        ("basic, 2 cards", basic2),
        ("pipelined, 2 cards", pipe2),
    ]:
        t.add(name, round(r.time_s, 1), round(r.tflops, 2), round(100 * r.knc_idle_fraction, 1))

    # Figure 9c: per-iteration savings (2 cards).
    savings = Table(
        "Figure 9c: per-iteration saving from the swapping pipeline (2 cards)",
        ["iteration block", "basic (s)", "pipelined (s)", "saving %"],
    )
    chunk = 10
    max_saving = 0.0
    for lo in range(0, len(basic2.per_stage) - chunk, chunk):
        tb = sum(t_ for _, _, t_ in basic2.per_stage[lo : lo + chunk])
        tp = sum(t_ for _, _, t_ in pipe2.per_stage[lo : lo + chunk])
        save = 100 * (1 - tp / tb)
        max_saving = max(max_saving, save)
        savings.add(f"{lo}-{lo + chunk}", round(tb, 2), round(tp, 2), round(save, 1))
    profile = render_stacked_profile(pipe.trace, n_windows=12, worker="knc")
    emit(
        "fig9",
        "\n\n".join(
            [t.render(), savings.render(), "card profile (pipelined):", profile]
        ),
    )
    # Idle-fraction claims.
    assert basic.knc_idle_fraction > 0.10  # "at least 13%" (we get ~15%)
    assert pipe.knc_idle_fraction < 0.06  # "less than 2.5%" (we get ~5%)
    assert pipe.knc_idle_fraction < basic.knc_idle_fraction / 2.5
    # Early-iteration savings in the paper's ballpark (up to ~11%; our
    # simulation peaks somewhat higher but in the same regime).
    assert 0.05 < max_saving / 100 < 0.25
    # The pipeline's advantage shrinks in the late stages (panel delay).
    late_b = sum(t_ for _, _, t_ in basic2.per_stage[-6:-1])
    late_p = sum(t_ for _, _, t_ in pipe2.per_stage[-6:-1])
    assert late_p > 0.9 * late_b
