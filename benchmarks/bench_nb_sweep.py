"""Ablation — block-size sweeps for both Linpack flavours.

Native: nb = 300 balances kernel depth (Table II's best k), panel cost
and scheduling granularity; very small blocks drown in panel/lock
overhead, very large ones starve the DAG of parallelism.

Hybrid: NB = Kt is pinned near 1200 by the PCIe bound (Section V-B);
going below it starves the card, going far above it slows the host panel
— the "lower-bound on block size which slows panel factorization"
drawback the conclusion calls out.
"""

import pytest

from repro.hpl import NativeHPL
from repro.hybrid import HybridHPL
from repro.report import Table

from conftest import once

NATIVE_N = 15000
NATIVE_NBS = (60, 120, 300, 600, 1200)
HYBRID_N = 42000
HYBRID_NBS = (300, 600, 1200, 2400, 4800)


def build_sweep():
    t = Table(
        "Block-size sweeps",
        ["flavour", "nb", "GFLOPS", "efficiency"],
    )
    native = {}
    for nb in NATIVE_NBS:
        r = NativeHPL(NATIVE_N, nb=nb).run()
        native[nb] = r
        t.add("native 15K", nb, round(r.gflops), round(r.efficiency, 3))
    hybrid = {}
    for nb in HYBRID_NBS:
        r = HybridHPL(HYBRID_N, nb=nb).run()
        hybrid[nb] = r
        t.add("hybrid 42K", nb, round(r.tflops * 1e3), round(r.efficiency, 3))
    return t, native, hybrid


def test_nb_sweep(benchmark, emit):
    table, native, hybrid = once(benchmark, build_sweep)
    emit("nb_sweep", table.render())
    # Native: the paper's kernel-preferred 300 is near-optimal (at mid
    # sizes slightly smaller blocks buy extra task parallelism) and
    # clearly beats both extremes.
    best_native = max(NATIVE_NBS, key=lambda nb: native[nb].gflops)
    assert native[300].gflops >= 0.90 * native[best_native].gflops
    assert native[300].gflops > native[60].gflops
    assert native[300].gflops > native[1200].gflops
    # Hybrid: sub-bound blocks starve the card on PCIe.
    assert hybrid[1200].tflops > hybrid[300].tflops
    assert hybrid[1200].tflops > hybrid[600].tflops
    # Far beyond the bound the panel and pipeline granularity suffer.
    assert hybrid[4800].tflops < hybrid[1200].tflops * 1.02
