"""Ablation — weak scaling of hybrid HPL: fixed memory per node, growing
node counts (the regime in which Table III's columns were measured).

Per-node problem share is held at the 64 GB fill level while the grid
grows from 1 to 100 nodes; the efficiency erosion (~4% single->multi
node, then slow decay from broadcast/swap volume) matches the paper's
"performance degradation of multi-node implementation, compared to a
single node is 4%".
"""

import math

import pytest

from repro.hybrid import HybridHPL
from repro.report import Table

from conftest import once

GRIDS = [(1, 1), (2, 2), (4, 4), (7, 7), (10, 10)]
N_SINGLE = 84000


def build_weak_scaling():
    t = Table(
        "Weak scaling at fixed per-node memory",
        ["nodes", "grid", "N", "TFLOPS", "efficiency %", "TF per node"],
    )
    rows = {}
    for p, q in GRIDS:
        nodes = p * q
        n = int(N_SINGLE * math.sqrt(nodes) // 1200) * 1200
        r = HybridHPL(n, p=p, q=q, lookahead="pipelined").run()
        t.add(
            nodes,
            f"{p}x{q}",
            f"{n // 1000}K",
            round(r.tflops, 2),
            round(100 * r.efficiency, 1),
            round(r.tflops / nodes, 3),
        )
        rows[nodes] = r
    return t, rows


def test_weak_scaling(benchmark, emit):
    table, rows = once(benchmark, build_weak_scaling)
    emit("weak_scaling", table.render())
    # Single -> 4 nodes costs a few points ("~4%" in the paper) ...
    assert rows[1].efficiency - rows[4].efficiency == pytest.approx(0.02, abs=0.025)
    # ... and the decay beyond stays gentle: 100 nodes within 5 points of 4.
    assert rows[4].efficiency - rows[100].efficiency < 0.05
    # Per-node throughput never collapses.
    assert rows[100].tflops / 100 > 0.9 * rows[1].tflops
