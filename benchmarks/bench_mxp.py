"""Mixed-precision HPL-MxP: SP factorization + refinement to double.

The MxP scheme factors in float32 — twice the SIMD lanes per 512-bit
register, so twice the per-core peak on KNC — and recovers full double
precision with a few sweeps of iterative refinement against the DP
system (:mod:`repro.hpl.mxp`). Two claims are gated here:

* **model speedup** — the native timing model at a card-resident size
  must put the MxP end-to-end time (SP factorization + DP-refinement
  stream time) at least ``1.6x`` faster than the all-DP run, and the
  hybrid model's SP factorization near the 2x lane ratio;
* **measured convergence** — a real numeric MxP run must pass the
  standard DP residual check within the refinement-iteration budget,
  and the iteration count (``refine_iters``, gated lower-is-better by
  ``tools/bench_compare.py``) must not creep up.

Model figures and the numeric iteration count are deterministic, so
``mxp.json`` is part of the committed baseline set. ``BENCH_SMOKE=1``
skips only the extra full-size numeric row, which is outside the
baseline either way.
"""

import os
import time

from repro.hpl.driver import NativeHPL
from repro.hybrid.driver import HybridHPL
from repro.report import Table

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

#: Model-section problem size: card-resident (fits the 8 GiB KNC DRAM)
#: and big enough that O(n^3) SP compute dominates the O(n^2)
#: refinement stream time (the speedup grows with n; 1.6x gates the
#: asymptote is being approached, not a small-n accident).
N_MODEL = 20000

#: Numeric-section size: small enough to factor for real in CI, fixed
#: across smoke/full so the baseline's ``refine_iters`` always matches.
N_NUM, NB_NUM = 192, 48

#: Full-size-only numeric row (not in the committed baseline).
N_NUM_FULL, NB_NUM_FULL = 384, 64

MXP_SPEEDUP_GATE = 1.6


def model_rows():
    dp = NativeHPL(N_MODEL).run()
    mxp = NativeHPL(N_MODEL, dtype="float32", mxp=True).run()
    rows = [
        {
            "bench": "mxp.model.native",
            "n": N_MODEL,
            "dp_time_s": dp.time_s,
            "mxp_time_s": mxp.time_s,
            "mxp_speedup": dp.time_s / mxp.time_s,
            "dp_gflops": dp.gflops,
            "mxp_gflops": mxp.gflops,
        }
    ]
    hyb_dp = HybridHPL(N_MODEL).run()
    hyb_sp = HybridHPL(N_MODEL, dtype="float32").run()
    rows.append(
        {
            "bench": "mxp.model.hybrid",
            "n": N_MODEL,
            "dp_time_s": hyb_dp.time_s,
            "sp_time_s": hyb_sp.time_s,
            "sp_speedup": hyb_dp.time_s / hyb_sp.time_s,
        }
    )
    return rows


def numeric_row(n, nb, bench):
    t0 = time.perf_counter()
    res = NativeHPL(
        n, nb=nb, workers=2, dtype="float32", mxp=True
    ).run(numeric=True)
    wall = time.perf_counter() - t0
    assert res.passed, (res.residual, "MxP must pass the DP residual check")
    assert res.refine is not None and res.refine["converged"], res.refine
    return {
        "bench": bench,
        "n": n,
        "nb": nb,
        "workers": 2,
        "refine_iters": res.refine["iterations"],
        "refine_converged": res.refine["converged"],
        "residual": res.residual,
        "passed": res.passed,
        "wall_s": wall,
    }


def build_mxp():
    rows = model_rows()
    rows.append(numeric_row(N_NUM, NB_NUM, "mxp.numeric.native"))
    if not SMOKE:
        rows.append(numeric_row(N_NUM_FULL, NB_NUM_FULL, "mxp.numeric.full"))

    t = Table(
        "Mixed-precision HPL-MxP: model speedup + measured refinement",
        ["bench", "n", "figure", "value"],
    )
    t.add(rows[0]["bench"], rows[0]["n"], "mxp_speedup",
          round(rows[0]["mxp_speedup"], 3))
    t.add(rows[1]["bench"], rows[1]["n"], "sp_speedup",
          round(rows[1]["sp_speedup"], 3))
    for row in rows[2:]:
        t.add(row["bench"], row["n"], "refine_iters", row["refine_iters"])
        t.add(row["bench"], row["n"], "residual", f"{row['residual']:.3e}")
    return t, rows


def test_mxp(benchmark, emit, emit_json):
    table, rows = once(benchmark, build_mxp)
    emit("mxp", table.render())
    emit_json("mxp", rows)
    # The headline gate: SP factorization + refinement beats all-DP by
    # the lane-ratio-driven margin at a card-resident size. The model
    # is deterministic, so this holds in smoke mode too.
    assert rows[0]["mxp_speedup"] >= MXP_SPEEDUP_GATE, rows[0]
    # The hybrid SP model should sit near the 2x SIMD lane ratio.
    assert rows[1]["sp_speedup"] >= MXP_SPEEDUP_GATE, rows[1]
    # Refinement must stay within its budget (tol=1.0, k<=8 defaults).
    for row in rows[2:]:
        assert row["refine_iters"] <= 8, row
