"""Ablation — strong scaling across Knights Corner cores.

Footnote 2 of the paper distinguishes "inherent hardware efficiency"
(peak over the compute cores) from whole-card efficiency. This sweep
shows how DGEMM and native Linpack throughput scale as cores are added:
DGEMM scales nearly linearly (the kernel is compute-bound by design);
Linpack bends earlier because the panel critical path and the swap
bandwidth do not scale with cores.
"""

import pytest

from repro.lu.dynamic import DynamicScheduler
from repro.machine import KNC
from repro.machine.gemm_model import gemm_efficiency
from repro.report import Table

from conftest import once

CORES = (4, 8, 15, 30, 45, 60)
N = 12000


def build_scaling():
    t = Table(
        f"Strong scaling over cores (N={N})",
        ["cores", "DGEMM GFLOPS", "DGEMM speedup", "HPL GFLOPS", "HPL speedup"],
    )
    dgemm = {}
    hpl = {}
    for c in CORES:
        eff = gemm_efficiency(N, N, 300, cores=c)
        dgemm[c] = eff * KNC.peak_dp_gflops(c)
        hpl[c] = DynamicScheduler(N, nb=300, cores=c).run().gflops
    for c in CORES:
        t.add(
            c,
            round(dgemm[c]),
            round(dgemm[c] / dgemm[CORES[0]], 2),
            round(hpl[c]),
            round(hpl[c] / hpl[CORES[0]], 2),
        )
    return t, dgemm, hpl


def test_scaling(benchmark, emit):
    table, dgemm, hpl = once(benchmark, build_scaling)
    emit("scaling", table.render())
    # DGEMM scales nearly linearly: 15x cores -> >13x throughput.
    assert dgemm[60] / dgemm[4] > 13
    # Linpack scales but sublinearly (panel path + swap bandwidth).
    assert 6 < hpl[60] / hpl[4] < 15
    assert hpl[60] / hpl[4] < dgemm[60] / dgemm[4]
    # Throughput is monotone in cores for both.
    for a, b in zip(CORES, CORES[1:]):
        assert dgemm[b] > dgemm[a]
        assert hpl[b] > hpl[a]
