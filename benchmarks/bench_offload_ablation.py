"""Ablations (Section V-B) — offload DGEMM design choices.

1. **Tile size**: the pre-computed best tile vs fixed small/large tiles
   (small tiles lower per-tile efficiency indirectly via edge exposure;
   large tiles leave fewer tiles to amortise the first/last edges).
2. **Host work stealing**: the host joining from the opposite corner
   adds its DGEMM rate on top of the card's.
3. **Kt**: below the PCIe bound (~950) the link cannot hide the output
   tiles and the card starves.
"""

import pytest

from repro.hybrid import OffloadDGEMM
from repro.hybrid.tile_select import best_tile_size
from repro.report import Table

from conftest import once

M = 40000


def build_ablation():
    t = Table(
        f"Offload ablations at M=N={M}",
        ["variant", "GFLOPS", "efficiency", "card tiles", "host tiles"],
    )
    rows = {}

    def add(name, r):
        t.add(name, round(r.gflops), round(r.efficiency, 3), r.tiles_card, r.tiles_host)
        rows[name] = r

    add("auto tile", OffloadDGEMM(M, M).run())
    add("tiny tiles (1200)", OffloadDGEMM(M, M, tile=(1200, 1200)).run())
    add("huge tiles (20000)", OffloadDGEMM(M, M, tile=(20000, 20000)).run())
    add("host stealing", OffloadDGEMM(M, M, host_assist=True).run())
    add("Kt=600 (< bound)", OffloadDGEMM(M, M, kt=600, tile=(7200, 7200)).run())
    return t, rows


def test_offload_ablation(benchmark, emit):
    table, rows = once(benchmark, build_ablation)
    emit("offload_ablation", table.render())
    auto = rows["auto tile"]
    # The pre-computed tile choice beats both extremes.
    assert auto.gflops >= rows["tiny tiles (1200)"].gflops
    assert auto.gflops >= rows["huge tiles (20000)"].gflops
    # Host stealing adds throughput beyond the card-only run.
    assert rows["host stealing"].gflops > auto.gflops
    assert rows["host stealing"].tiles_host > 0
    # Sub-bound Kt starves the card on the PCIe link.
    assert rows["Kt=600 (< bound)"].efficiency < auto.efficiency - 0.03
    # The auto choice matches the model's precomputation.
    mt, nt, _ = best_tile_size(M, M)
    assert (OffloadDGEMM(M, M).mt, OffloadDGEMM(M, M).nt) == (mt, nt)
