"""Steady-state allocation ablation — pooled vs allocating hot paths.

The buffer-arena tentpole claims the LU hot paths stop allocating once
the :class:`~repro.blas.buffers.BufferPool` is warm: every kernel
scratch (pivot search, row swaps, rank-1 updates, gather buffers, trsm
workspaces, trailing-update products) is rented from the arena instead
of hitting the NumPy allocator per call. This benchmark measures the
claim directly with tracemalloc: a seeded blocked LU (and the
triangular solve) runs once with the pool disabled and once with a
pre-warmed pool, and we record the temporary bytes each steady-state
run allocated — total and per stage.

Emits ``alloc.json``. The ``alloc_*_bytes`` keys are gated
*lower-is-better* by ``tools/bench_compare.py`` (growth beyond the
threshold is the regression); ``pool_reduction_efficiency`` — the
fraction of the allocating path's temporaries the pool eliminates — is
gated higher-is-better like every other efficiency. Both runs produce
bitwise-identical factors, which the benchmark asserts. Set
``BENCH_SMOKE=1`` for the reduced CI sizes; the byte counts are
allocation accounting, not wall-clock, so the headline assertion (the
pool eliminates at least half the temporaries) holds at any size.
"""

import os

import numpy as np

from repro.blas.buffers import BufferPool
from repro.lu.factorize import blocked_lu, lu_solve
from repro.obs import measure_temp_bytes
from repro.report import Table

from conftest import once

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0") or "0"))

N = 192 if SMOKE else 384
NB = 48
SEED = 7


def _steady_state_factor(pool):
    """Temp bytes of one full blocked LU at steady state.

    The matrix copy lives outside the measured span; with a pool the
    first (unmeasured) factorization warms the arena so the measured
    run only exercises checkout/release.
    """
    rng = np.random.default_rng(SEED)
    a = rng.standard_normal((N, N))
    work = np.empty_like(a)
    if pool is not None:
        np.copyto(work, a)
        blocked_lu(work, nb=NB, buffer_pool=pool)
    np.copyto(work, a)
    (lu, ipiv), temp = measure_temp_bytes(
        blocked_lu, work, nb=NB, buffer_pool=pool
    )
    return lu.copy(), ipiv, temp


def _steady_state_solve(lu, ipiv, b, pool):
    """Temp bytes of one lu_solve at steady state (pool pre-warmed)."""
    if pool is not None:
        lu_solve(lu, ipiv, b, pool=pool)
    x, temp = measure_temp_bytes(lu_solve, lu, ipiv, b, pool=pool)
    return x, temp


def build_alloc():
    stages = (N + NB - 1) // NB
    rng = np.random.default_rng(SEED + 1)
    b = rng.standard_normal(N)

    lu_a, ipiv_a, factor_alloc = _steady_state_factor(None)
    pool = BufferPool()
    lu_p, ipiv_p, factor_pooled = _steady_state_factor(pool)
    # The pool changes where scratch lives, never what is computed.
    assert np.array_equal(lu_a, lu_p)
    assert np.array_equal(ipiv_a, ipiv_p)

    x_a, solve_alloc = _steady_state_solve(lu_a, ipiv_a, b, None)
    x_p, solve_pooled = _steady_state_solve(lu_p, ipiv_p, b, pool)
    assert np.array_equal(x_a, x_p)

    reduction = 1.0 - factor_pooled / factor_alloc
    rows = [
        {
            "bench": "lu.factor",
            "mode": "alloc",
            "n": N,
            "nb": NB,
            "stages": stages,
            "alloc_temp_bytes": factor_alloc,
            "alloc_bytes_per_stage": factor_alloc / stages,
        },
        {
            "bench": "lu.factor",
            "mode": "pooled",
            "n": N,
            "nb": NB,
            "stages": stages,
            "alloc_temp_bytes": factor_pooled,
            "alloc_bytes_per_stage": factor_pooled / stages,
            "pool_reduction_efficiency": reduction,
        },
        {
            "bench": "lu.solve",
            "mode": "alloc",
            "n": N,
            "alloc_temp_bytes": solve_alloc,
        },
        {
            "bench": "lu.solve",
            "mode": "pooled",
            "n": N,
            "alloc_temp_bytes": solve_pooled,
        },
    ]

    t = Table(
        "Steady-state temporaries: pooled vs allocating"
        + (" (smoke sizes)" if SMOKE else ""),
        ["bench", "mode", "temp bytes", "per stage"],
    )
    for row in rows:
        t.add(
            row["bench"],
            row["mode"],
            row["alloc_temp_bytes"],
            round(row.get("alloc_bytes_per_stage", 0)),
        )
    return t, rows, reduction


def test_alloc(benchmark, emit, emit_json):
    table, rows, reduction = once(benchmark, build_alloc)
    emit("alloc", table.render())
    emit_json("alloc", rows)
    # The tentpole's acceptance bar: the warm pool eliminates at least
    # half of the allocating path's steady-state temporaries per stage.
    assert reduction >= 0.5, rows
