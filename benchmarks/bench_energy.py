"""Future-work study (Section VII) — energy efficiency of hybrid vs
fully-native Knights Corner clusters.

The paper's conclusion: the host "is several times slower than Knights
Corner, but consumes comparable power", so the hybrid flavour is less
energy efficient than a native multi-node run with the host in deep
sleep. This benchmark quantifies the claim with the node power model
and the native-cluster driver (calibrated only so its 1x1 grid matches
the validated native single-card DES result).
"""

import pytest

from repro.cluster.native_cluster import NativeClusterHPL
from repro.hpl.driver import snb_hpl_gflops
from repro.hybrid import HybridHPL, NodeConfig
from repro.machine.energy import (
    cpu_only_node_power,
    energy_kj,
    gflops_per_watt,
    hybrid_node_power,
    native_node_power,
)
from repro.report import Table

from conftest import once


def build_energy():
    rows = []
    # CPU-only node.
    snb_gf = snb_hpl_gflops(84000)
    rows.append(("CPU only, 1 node, N=84K", snb_gf / 1e3, cpu_only_node_power().total_w))
    # Hybrid single node and 100-node cluster.
    h1 = HybridHPL(84000).run()
    rows.append(("hybrid 1x1x1card, N=84K", h1.tflops, hybrid_node_power(1).total_w))
    h2 = HybridHPL(84000, node=NodeConfig(cards=2)).run()
    rows.append(("hybrid 1x1x2cards, N=84K", h2.tflops, hybrid_node_power(2).total_w))
    h100 = HybridHPL(825000, p=10, q=10).run()
    rows.append(("hybrid 10x10, N=825K", h100.tflops, 100 * hybrid_node_power(1).total_w))
    # Native: single card and the future-work cluster (GDDR-gated N).
    n1 = NativeClusterHPL(30000).run()
    rows.append(("native 1 card, N=30K", n1.tflops, native_node_power(1).total_w))
    n100 = NativeClusterHPL(300000, p=10, q=10).run()
    rows.append(("native 10x10, N=300K", n100.tflops, 100 * native_node_power(1).total_w))

    t = Table(
        "Energy efficiency: hybrid vs fully-native (Section VII)",
        ["configuration", "TFLOPS", "node power (W)", "GFLOPS/W"],
    )
    out = {}
    for label, tflops, power in rows:
        gpw = gflops_per_watt(tflops * 1e3, power)
        t.add(label, round(tflops, 2), round(power, 1), round(gpw, 2))
        out[label] = (tflops, power, gpw)
    return t, out


def test_energy(benchmark, emit):
    table, rows = once(benchmark, build_energy)
    emit("energy", table.render())
    cpu = rows["CPU only, 1 node, N=84K"][2]
    hyb1 = rows["hybrid 1x1x1card, N=84K"][2]
    hyb2 = rows["hybrid 1x1x2cards, N=84K"][2]
    hyb100 = rows["hybrid 10x10, N=825K"][2]
    nat1 = rows["native 1 card, N=30K"][2]
    nat100 = rows["native 10x10, N=300K"][2]
    # The cards transform the node's energy efficiency ...
    assert hyb1 > 2 * cpu
    # ... a second card helps energy efficiency further (more flops per
    # fixed host power) ...
    assert hyb2 > hyb1
    # ... and the paper's future-work claim: native beats hybrid.
    assert nat1 > hyb1
    assert nat100 > hyb100
    # Energy of a full 100-node hybrid run, for scale (order: tens of MJ).
    power_100 = 100 * hybrid_node_power(1).total_w
    run_energy = energy_kj(power_100, 300.0)
    assert run_energy == pytest.approx(power_100 * 0.3, rel=1e-9)
