#!/usr/bin/env python3
"""Benchmark regression gate.

Compares the throughput-style figures in two sets of benchmark JSON
artifacts (as written by ``benchmarks/conftest.py``'s ``emit_json``
fixture, i.e. ``RunResult.to_dict()`` rows) and exits non-zero when any
figure in ``current`` has dropped more than ``--threshold`` (default
20%) below ``baseline``.

Usage::

    python tools/bench_compare.py BASELINE CURRENT [--threshold 0.2]

``BASELINE`` and ``CURRENT`` are each a ``.json`` file or a directory;
directories are matched by filename, and only files present in the
*baseline* set are compared — extra artifacts in ``current`` are
ignored, so the committed baseline directory decides what is gated.

Comparable figures are numeric leaves whose key names a rate, an
efficiency or a speedup (``gflops``, ``tflops``, ``efficiency``,
``speedup``, ``requests_per`` — including prefixed forms like
``snb_gflops``); wall-clock times, counters and paper reference values
(``paper_*``) are never gated. Higher is better for every rate key.
Two families are gated the other way round — growth beyond
``--threshold`` is the regression: allocation figures (keys naming
both ``alloc`` and ``bytes``, as emitted by
``benchmarks/bench_alloc.py``) and latency figures (keys naming
``latency``, ``p99``, ``p50`` or ``queue_wait``, as emitted by
``benchmarks/bench_service.py``) and refinement-iteration counts
(keys naming ``refine_iters``, as emitted by
``benchmarks/bench_mxp.py`` — more sweeps to recover double precision
is the regression; ``mxp_speedup`` is gated higher-is-better through
the ordinary ``speedup`` rule) and redistribution times (keys naming
``regrid`` and ending in ``_s``, as emitted by
``benchmarks/bench_elastic.py`` — a slower mid-run grid reshape is the
regression; ``redistribution_efficiency`` is gated higher-is-better
through the ordinary ``efficiency`` rule).

Standard library only, so CI can run it before (or without) installing
the package.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
from typing import Dict, Iterator, List, Tuple

#: A leaf is gated higher-is-better when its key contains one of these
#: (case-insensitive).
RATE_KEY_PARTS = ("gflops", "tflops", "efficiency", "speedup", "requests_per")

#: A leaf is gated lower-is-better when its key contains ALL of these:
#: steady-state allocation figures, where growth is the regression.
ALLOC_KEY_PARTS = ("alloc", "bytes")

#: A leaf is gated lower-is-better when its key contains ANY of these:
#: latency figures (service submit latency, queue wait, percentile
#: summaries), where growth is the regression.
LATENCY_KEY_PARTS = ("latency", "p99", "p50", "queue_wait")

#: A leaf is gated lower-is-better when its key contains ANY of these:
#: MxP refinement iteration counts — needing more refinement sweeps to
#: recover double-precision accuracy is the regression.
REFINE_KEY_PARTS = ("refine_iters",)

#: A leaf is gated lower-is-better when its key names ``regrid`` and
#: ends in ``_s``: redistribution wall/predicted seconds, where a
#: slower grid reshape is the regression.
REGRID_KEY_PART = "regrid"

#: ...unless it also matches one of these (reference data, not measurements).
SKIP_KEY_PARTS = ("paper",)


def classify_key(key: str) -> str:
    """'higher' / 'lower' for gated keys, '' for everything else."""
    k = key.lower()
    if any(part in k for part in SKIP_KEY_PARTS):
        return ""
    if all(part in k for part in ALLOC_KEY_PARTS):
        return "lower"
    if any(part in k for part in LATENCY_KEY_PARTS):
        return "lower"
    if any(part in k for part in REFINE_KEY_PARTS):
        return "lower"
    if REGRID_KEY_PART in k and k.endswith("_s"):
        return "lower"
    if any(part in k for part in RATE_KEY_PARTS):
        return "higher"
    return ""


def is_rate_key(key: str) -> bool:
    return classify_key(key) == "higher"


def iter_rate_leaves(node, path: str = "") -> Iterator[Tuple[str, float, str]]:
    """Yield (dotted.path, value, sense) for every gated numeric leaf."""
    if isinstance(node, dict):
        for key in sorted(node):
            sub = f"{path}.{key}" if path else str(key)
            value = node[key]
            if isinstance(value, (dict, list)):
                yield from iter_rate_leaves(value, sub)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                sense = classify_key(str(key))
                if sense and math.isfinite(value):
                    yield sub, float(value), sense
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from iter_rate_leaves(value, f"{path}[{i}]")


def load_rates(path: pathlib.Path) -> Dict[str, Tuple[float, str]]:
    return {
        key: (value, sense)
        for key, value, sense in iter_rate_leaves(json.loads(path.read_text()))
    }


def collect(root: pathlib.Path) -> Dict[str, pathlib.Path]:
    """Map artifact name -> json path for a file or directory argument."""
    if root.is_file():
        return {root.name: root}
    if root.is_dir():
        return {p.name: p for p in sorted(root.glob("*.json"))}
    raise FileNotFoundError(root)


def compare(
    baseline: pathlib.Path, current: pathlib.Path, threshold: float
) -> Tuple[List[str], List[str]]:
    """Return (regressions, notes) as printable report lines."""
    base_files = collect(baseline)
    cur_files = collect(current)
    regressions: List[str] = []
    notes: List[str] = []
    if not base_files:
        notes.append(f"note: no baseline artifacts under {baseline}")
    for name, base_path in base_files.items():
        cur_path = cur_files.get(name)
        if cur_path is None:
            notes.append(f"note: {name}: missing from current set (skipped)")
            continue
        base_rates = load_rates(base_path)
        cur_rates = load_rates(cur_path)
        if not base_rates:
            notes.append(f"note: {name}: no gated figures in baseline")
            continue
        for key, (base_val, sense) in base_rates.items():
            cur = cur_rates.get(key)
            if cur is None:
                notes.append(f"note: {name}: {key} missing from current (skipped)")
                continue
            cur_val = cur[0]
            if base_val <= 0:
                continue
            rel = (cur_val - base_val) / base_val
            # For lower-is-better figures (allocation bytes) growth is
            # the regression; flip the sign so one rule gates both.
            worse = -rel if sense == "lower" else rel
            line = (
                f"{name}: {key}: {base_val:.6g} -> {cur_val:.6g} "
                f"({rel:+.1%}{', lower is better' if sense == 'lower' else ''})"
            )
            if worse < -threshold:
                regressions.append("REGRESSION " + line)
            elif worse > threshold:
                notes.append("improved   " + line)
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="baseline file or dir")
    parser.add_argument("current", type=pathlib.Path, help="current file or dir")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="max tolerated fractional drop (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also print every compared figure"
    )
    args = parser.parse_args(argv)

    if args.verbose:
        for name, path in collect(args.baseline).items():
            for key, (val, sense) in load_rates(path).items():
                print(f"baseline {name}: {key} = {val:.6g} ({sense} is better)")

    regressions, notes = compare(args.baseline, args.current, args.threshold)
    for line in notes:
        print(line)
    for line in regressions:
        print(line, file=sys.stderr)
    n_base = sum(len(load_rates(p)) for p in collect(args.baseline).values())
    if regressions:
        print(
            f"bench_compare: {len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%} across {n_base} gated figure(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench_compare: OK — no regression beyond {args.threshold:.0%} "
        f"across {n_base} gated figure(s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
